package radio

import (
	"math"

	"wgtt/internal/mobility"
	"wgtt/internal/sim"
)

// Endpoint is one radio node: an AP (directional antenna, fixed position,
// window/cable losses) or a client (omni antenna, vehicular trace).
type Endpoint struct {
	Name         string
	Trace        mobility.Trace
	Antenna      Antenna
	BoresightRad float64 // antenna orientation; ignored by omni antennas
	TxPowerDBm   float64
	ExtraLossDB  float64 // fixed per-node losses (cables, splitter, window)
	SpeedHintMS  float64 // design speed used to set the link Doppler spread
}

// Position returns the endpoint's location at time t.
func (e *Endpoint) Position(t sim.Time) mobility.Point { return e.Trace.Position(t) }

// GainTowardDB returns the endpoint's antenna gain toward point q at time t.
func (e *Endpoint) GainTowardDB(t sim.Time, q mobility.Point) float64 {
	angle := e.Position(t).AngleTo(q) - e.BoresightRad
	return e.Antenna.GainDB(angle)
}

// Link is the radio channel between two endpoints. The large-scale path is
// deterministic from geometry; the small-scale term is a frequency-selective
// Fader. Channel reciprocity holds (as on a real TDD Wi-Fi channel): both
// directions share the same fading and path gain and differ only in transmit
// power, which is what lets WGTT predict downlink quality from uplink CSI.
type Link struct {
	A, B   *Endpoint
	fader  *Fader
	params Params

	// disturb is an optional extra time-varying attenuation (dB) modelling
	// scattering from other vehicles near the link (see Channel.AddDisturber).
	disturb func(t sim.Time) float64

	// shadow, when set, adds spatially-correlated log-normal shadowing
	// evaluated at the mobile endpoint's position.
	shadow *Shadower
	mobile *Endpoint
}

// Distance returns the A↔B separation in meters at time t.
func (l *Link) Distance(t sim.Time) float64 {
	return l.A.Position(t).Distance(l.B.Position(t))
}

// PathGainDB is the deterministic (no-fading) gain of the link at time t:
// both antenna gains minus path loss and fixed losses. Typically negative.
func (l *Link) PathGainDB(t sim.Time) float64 {
	pa, pb := l.A.Position(t), l.B.Position(t)
	d := pa.Distance(pb)
	pl := l.params.refLossDB() + 10*l.params.PathLossExponent*math.Log10(math.Max(d, l.params.RefDistanceM)/l.params.RefDistanceM)
	g := l.A.GainTowardDB(t, pb) + l.B.GainTowardDB(t, pa)
	loss := l.A.ExtraLossDB + l.B.ExtraLossDB
	if l.params.Obstruction != nil {
		loss += l.params.Obstruction(pa, pb)
	}
	if l.disturb != nil {
		loss += l.disturb(t)
	}
	if l.shadow != nil {
		mp := l.mobile.Position(t)
		g += l.shadow.GainDB(mp.X, mp.Y)
	}
	return g - pl - loss
}

// SNRPerSubcarrierDB fills dst (len = Params.Subcarriers) with the
// instantaneous per-subcarrier SNR in dB for a transmission at txPowerDBm.
func (l *Link) SNRPerSubcarrierDB(t sim.Time, txPowerDBm float64, dst []float64) {
	base := txPowerDBm + l.PathGainDB(t) - l.params.noiseFloorDBm()
	if l.params.NoFading {
		for i := range dst {
			dst[i] = base
		}
		return
	}
	l.fader.GainsDB(t.Seconds(), l.params.SubcarrierSpacingHz, dst)
	for i := range dst {
		dst[i] += base
	}
}

// SNRSnapshot returns a freshly allocated per-subcarrier SNR slice for a
// transmission from endpoint from ("A" side if from == l.A). Steady-state
// sampling paths should prefer SNRInto with a reused buffer.
func (l *Link) SNRSnapshot(t sim.Time, from *Endpoint) []float64 {
	dst := make([]float64, l.params.Subcarriers)
	l.SNRPerSubcarrierDB(t, from.TxPowerDBm, dst)
	return dst
}

// SNRInto fills dst (reusing its capacity) with the per-subcarrier SNR for a
// transmission from endpoint from, and returns the filled slice of length
// Params.Subcarriers. The allocation-free counterpart of SNRSnapshot.
func (l *Link) SNRInto(t sim.Time, from *Endpoint, dst []float64) []float64 {
	n := l.params.Subcarriers
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	l.SNRPerSubcarrierDB(t, from.TxPowerDBm, dst)
	return dst
}

// Subcarriers returns the per-snapshot subcarrier count of this link.
func (l *Link) Subcarriers() int { return l.params.Subcarriers }

// MeanSNRDB returns the wideband mean SNR (dB) at time t for a transmission
// at txPowerDBm — path gain plus flat fading. This is what an RSSI-based
// scheme (the Enhanced 802.11r baseline) effectively measures.
func (l *Link) MeanSNRDB(t sim.Time, txPowerDBm float64) float64 {
	return txPowerDBm + l.PathGainDB(t) + l.flatFadeDB(t) - l.params.noiseFloorDBm()
}

func (l *Link) flatFadeDB(t sim.Time) float64 {
	if l.params.NoFading {
		return 0
	}
	return l.fader.FlatGainDB(t.Seconds())
}

// RSSIdBm returns the received signal strength at time t for a transmission
// at txPowerDBm.
func (l *Link) RSSIdBm(t sim.Time, txPowerDBm float64) float64 {
	return txPowerDBm + l.PathGainDB(t) + l.flatFadeDB(t)
}

// NoiseFloorDBm exposes the link's receiver noise floor.
func (l *Link) NoiseFloorDBm() float64 { return l.params.noiseFloorDBm() }
