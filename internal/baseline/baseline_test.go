package baseline

import (
	"math"
	"testing"

	"wgtt/internal/ap"
	"wgtt/internal/backhaul"
	"wgtt/internal/client"
	"wgtt/internal/mac"
	"wgtt/internal/mobility"
	"wgtt/internal/packet"
	"wgtt/internal/radio"
	wrt "wgtt/internal/runtime"
	"wgtt/internal/sim"
)

type harness struct {
	eng    *sim.Engine
	bh     *backhaul.Switch
	net    *Network
	aps    []*ap.AP
	cl     *client.Client
	roamer *Roamer
	idx    uint16
}

// newHarness wires two baseline APs 15 m apart and a client that starts
// under AP0, over a fade-free channel.
func newHarness(t *testing.T, clientTrace mobility.Trace, speedHint float64) *harness {
	t.Helper()
	eng := sim.NewEngine()
	rng := sim.NewRNG(9)
	params := radio.DefaultParams()
	params.NoFading = true
	ch := radio.NewChannel(params, rng)
	medium := mac.NewMedium(eng, ch, rng.Stream("mac"))
	bh := backhaul.NewSwitch(eng, 200*sim.Microsecond)

	h := &harness{eng: eng, bh: bh}
	for i := 0; i < 2; i++ {
		cfg := ap.DefaultConfig(i, packet.APMAC(i)) // own BSS per AP
		cfg.BAForwarding = false
		ep := &radio.Endpoint{
			Name:         cfg.Name,
			Trace:        mobility.Stationary{At: mobility.Point{X: 20 + float64(i)*15, Y: mobility.APSetback}},
			Antenna:      radio.NewLairdGD24BP(),
			BoresightRad: -math.Pi / 2,
			TxPowerDBm:   17,
			ExtraLossDB:  24,
		}
		if err := ch.AddEndpoint(ep); err != nil {
			t.Fatal(err)
		}
		st := mac.NewStation(medium, mac.StationConfig{Addr: cfg.MAC, Endpoint: ep})
		h.aps = append(h.aps, ap.New(cfg, wrt.Virtual(eng), bh, st, packet.ControllerIP, rng.Stream(cfg.Name)))
	}
	h.net = NewNetwork(DefaultNetworkConfig(), eng, bh, h.aps)
	h.net.StartBeacons()

	clEP := &radio.Endpoint{Name: "car1", Trace: clientTrace, TxPowerDBm: 15, SpeedHintMS: speedHint}
	if err := ch.AddEndpoint(clEP); err != nil {
		t.Fatal(err)
	}
	st := mac.NewStation(medium, mac.StationConfig{Addr: packet.ClientMAC(1), Endpoint: clEP})
	h.cl = client.New(client.DefaultConfig(1, packet.APMAC(0)), eng, st)
	h.net.Associate(h.cl.Config().MAC, h.cl.Config().IP, 0)
	rcfg := DefaultRoamerConfig()
	rcfg.Hysteresis = 300 * sim.Millisecond // the small testbed is quick
	h.roamer = NewRoamer(rcfg, eng, h.cl, h.net, []APAddr{{0, packet.APMAC(0)}, {1, packet.APMAC(1)}}, 0)
	return h
}

func (h *harness) push(n int) {
	for i := 0; i < n; i++ {
		p := &packet.Packet{FlowID: 1, Seq: uint32(i), IPID: uint16(i), ClientMAC: h.cl.Config().MAC, Bytes: 1400}
		if err := h.net.SendDownlink(p, &h.idx); err != nil {
			panic(err)
		}
	}
}

func TestBeaconsReachClient(t *testing.T) {
	h := newHarness(t, mobility.Stationary{At: mobility.Point{X: 20}}, 0)
	h.eng.RunUntil(sim.Second)
	// Two APs at 100 ms each ⇒ ~20 beacons/second.
	if h.cl.Stats.Beacons < 15 {
		t.Errorf("client heard %d beacons in 1 s", h.cl.Stats.Beacons)
	}
}

func TestStationaryClientDoesNotRoam(t *testing.T) {
	h := newHarness(t, mobility.Stationary{At: mobility.Point{X: 20}}, 0)
	h.eng.RunUntil(3 * sim.Second)
	if h.roamer.Roams != 0 {
		t.Errorf("client under its AP roamed %d times", h.roamer.Roams)
	}
	if h.net.CurrentAP(h.cl.Config().MAC) != 0 {
		t.Error("association moved without cause")
	}
}

func TestDriveTriggersRoam(t *testing.T) {
	// Drive from AP0's cell into AP1's at 15 mph.
	h := newHarness(t, mobility.DriveBy(18, 0, 15), mobility.MPH(15))
	h.eng.RunUntil(4 * sim.Second)
	if h.roamer.Roams == 0 {
		t.Fatal("client never roamed while leaving its cell")
	}
	if h.roamer.Current() != 1 {
		t.Errorf("roamer current = %d, want 1", h.roamer.Current())
	}
	if h.net.CurrentAP(h.cl.Config().MAC) != 1 {
		t.Error("network routing did not follow the roam")
	}
	if h.cl.Dest() != packet.APMAC(1) {
		t.Error("client uplink not retargeted")
	}
	if len(h.net.Handovers) == 0 {
		t.Error("handover not recorded")
	}
}

func TestDownlinkFollowsAssociation(t *testing.T) {
	h := newHarness(t, mobility.DriveBy(18, 0, 15), mobility.MPH(15))
	var got int
	h.cl.OnDownlink = func(*packet.Packet, sim.Time) { got++ }
	// Trickle packets across the whole drive.
	var tick func()
	sent := 0
	tick = func() {
		if sent < 400 {
			h.push(1)
			sent++
			h.eng.After(10*sim.Millisecond, tick)
		}
	}
	h.eng.After(sim.Millisecond, tick)
	h.eng.RunUntil(6 * sim.Second)
	// The late roam strands part of the old AP's backlog (the §3.1.2
	// pathology this baseline exists to demonstrate), but most packets
	// sent after the reroute must arrive.
	if got < 220 {
		t.Errorf("delivered %d/400 packets across a roam", got)
	}
	if h.roamer.Roams == 0 {
		t.Error("drive did not roam")
	}
}

func TestSendDownlinkUnknownClient(t *testing.T) {
	h := newHarness(t, mobility.Stationary{At: mobility.Point{X: 20}}, 0)
	var idx uint16
	err := h.net.SendDownlink(&packet.Packet{ClientMAC: packet.ClientMAC(9)}, &idx)
	if err == nil {
		t.Error("unknown client accepted")
	}
}

func TestClientAssociatedIdempotent(t *testing.T) {
	h := newHarness(t, mobility.Stationary{At: mobility.Point{X: 20}}, 0)
	h.net.ClientAssociated(h.cl.Config().MAC, 0) // same AP: no-op
	if len(h.net.Handovers) != 0 {
		t.Error("no-op reassociation recorded a handover")
	}
	h.net.ClientAssociated(h.cl.Config().MAC, 1)
	if len(h.net.Handovers) != 1 || h.net.CurrentAP(h.cl.Config().MAC) != 1 {
		t.Error("handover not applied")
	}
	// The old AP lingers, then stops serving.
	if !h.aps[0].Serving(h.cl.Config().MAC) {
		t.Error("old AP quenched before the linger window")
	}
	h.eng.RunUntil(h.eng.Now() + 200*sim.Millisecond)
	if h.aps[0].Serving(h.cl.Config().MAC) {
		t.Error("old AP still serving after linger")
	}
	if !h.aps[1].Serving(h.cl.Config().MAC) {
		t.Error("new AP not serving")
	}
}

func TestRoamerHysteresisBounds(t *testing.T) {
	h := newHarness(t, mobility.Stationary{At: mobility.Point{X: 50}}, 0) // between/behind cells: weak RSSI
	h.eng.RunUntil(5 * sim.Second)
	// Even with a weak link, roams are rate-limited by hysteresis.
	maxRoams := uint64(5*sim.Second/(300*sim.Millisecond)) + 1
	if h.roamer.Roams+h.roamer.RoamFailures > maxRoams {
		t.Errorf("roam attempts = %d, exceeds hysteresis bound %d",
			h.roamer.Roams+h.roamer.RoamFailures, maxRoams)
	}
}
