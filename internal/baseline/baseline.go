// Package baseline implements the paper's comparison scheme, "Enhanced
// 802.11r" (§5.1): a performance-tuned 802.11r/k fast-roaming stack in
// which every AP beacons at 100 ms, the client roams when its serving AP's
// RSSI falls below a threshold (to the AP with the highest RSSI, with a one
// second time hysteresis), and association/authentication state is
// pre-shared among APs so the re-association exchange is a single
// management round trip.
//
// Unlike WGTT, the wired side forwards each downlink packet to exactly one
// AP — the one the client is associated with — so a late handover strands
// the old AP's backlog behind a dead link, the §3.1.2 buffering pathology.
package baseline

import (
	"math"

	"wgtt/internal/ap"
	"wgtt/internal/backhaul"
	"wgtt/internal/client"
	"wgtt/internal/mac"
	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

// NetworkConfig parameterizes the baseline wired side.
type NetworkConfig struct {
	// BeaconInterval is the per-AP beacon period (100 ms in §5.1).
	BeaconInterval sim.Time
	// OldAPLinger is how long the previous AP keeps transmitting after the
	// client re-associates elsewhere — the association-state propagation
	// delay of a vendor controller.
	OldAPLinger sim.Time
}

// DefaultNetworkConfig returns the §5.1 operating point.
func DefaultNetworkConfig() NetworkConfig {
	return NetworkConfig{
		BeaconInterval: 100 * sim.Millisecond,
		OldAPLinger:    100 * sim.Millisecond,
	}
}

// Network is the baseline distribution system: it routes each client's
// downlink through its single associated AP and relays uplink packets the
// (single) AP tunnels up.
type Network struct {
	cfg NetworkConfig
	eng *sim.Engine
	bh  *backhaul.Switch
	aps []*ap.AP

	current map[packet.MACAddr]int
	ips     map[packet.MACAddr]packet.IPv4Addr

	// DeliverUplink receives uplink packets (no de-dup needed: one AP).
	DeliverUplink func(p *packet.Packet, at sim.Time)

	// Handovers records completed association moves.
	Handovers []Handover
}

// Handover is one baseline association change.
type Handover struct {
	At       sim.Time
	Client   packet.MACAddr
	From, To int
}

// NewNetwork creates the baseline wired side and attaches it at the
// controller address.
func NewNetwork(cfg NetworkConfig, eng *sim.Engine, bh *backhaul.Switch, aps []*ap.AP) *Network {
	n := &Network{
		cfg:     cfg,
		eng:     eng,
		bh:      bh,
		aps:     aps,
		current: make(map[packet.MACAddr]int),
		ips:     make(map[packet.MACAddr]packet.IPv4Addr),
	}
	bh.Attach(packet.ControllerIP, n)
	return n
}

// HandleBackhaul implements backhaul.Node.
func (n *Network) HandleBackhaul(_ packet.IPv4Addr, msg packet.Message) {
	if up, ok := msg.(*packet.UpData); ok && n.DeliverUplink != nil {
		n.DeliverUplink(up.Pkt, n.eng.Now())
	}
}

// Associate installs a client at its initial AP.
func (n *Network) Associate(clientMAC packet.MACAddr, ip packet.IPv4Addr, apID int) {
	n.current[clientMAC] = apID
	n.ips[clientMAC] = ip
	for i, a := range n.aps {
		a.Associate(clientMAC, ip, i == apID)
	}
}

// CurrentAP returns the AP a client is associated with (-1 if unknown).
func (n *Network) CurrentAP(clientMAC packet.MACAddr) int {
	id, ok := n.current[clientMAC]
	if !ok {
		return -1
	}
	return id
}

// ClientAssociated performs the wired-side half of a re-association: route
// downlink to the new AP immediately, let the old AP linger briefly (state
// propagation), then quench it.
func (n *Network) ClientAssociated(clientMAC packet.MACAddr, apID int) {
	old, ok := n.current[clientMAC]
	if ok && old == apID {
		return
	}
	n.current[clientMAC] = apID
	ip := n.ips[clientMAC]
	n.aps[apID].Associate(clientMAC, ip, true)
	n.aps[apID].Station().Kick()
	if ok {
		oldAP := n.aps[old]
		n.eng.After(n.cfg.OldAPLinger, func() {
			if n.current[clientMAC] != old {
				oldAP.Associate(clientMAC, ip, false)
			}
		})
	}
	n.Handovers = append(n.Handovers, Handover{At: n.eng.Now(), Client: clientMAC, From: old, To: apID})
}

// SendDownlink forwards one downlink packet to the client's current AP. The
// 12-bit index keeps the client-side duplicate filter uniform across modes.
func (n *Network) SendDownlink(p *packet.Packet, idx *uint16) error {
	apID, ok := n.current[p.ClientMAC]
	if !ok {
		return errUnknownClient
	}
	p.Index = *idx
	*idx = packet.NextIndex(*idx)
	a := n.aps[apID]
	return n.bh.Send(packet.ControllerIP, a.Config().IP, &packet.DownData{APDst: a.Config().IP, Pkt: p})
}

var errUnknownClient = errorString("baseline: unknown client")

type errorString string

func (e errorString) Error() string { return string(e) }

// StartBeacons schedules staggered 100 ms beacons on every AP, forever.
func (n *Network) StartBeacons() {
	for i, a := range n.aps {
		a := a
		offset := sim.Time(i) * n.cfg.BeaconInterval / sim.Time(len(n.aps))
		var beacon func()
		beacon = func() {
			st := a.Station()
			from := a.Config().MAC
			st.SendOneShot(func() *mac.Frame {
				return &mac.Frame{
					Kind:  mac.KindBeacon,
					From:  from,
					To:    mac.BroadcastAddr,
					MPDUs: []*mac.MPDU{{Bytes: 100}},
				}
			}, nil)
			n.eng.After(n.cfg.BeaconInterval, beacon)
		}
		n.eng.After(offset, beacon)
	}
}

// RoamerConfig parameterizes the client-side roamer.
type RoamerConfig struct {
	// ThresholdDBm: roam when the serving AP's smoothed RSSI is below this.
	ThresholdDBm float64
	// Hysteresis is the §5.1 one-second time hysteresis between roams.
	Hysteresis sim.Time
	// EWMA is the RSSI smoothing weight on the previous estimate.
	EWMA float64
	// ReassocProcessing models authentication/association completion after
	// the management exchange (fast thanks to pre-shared 802.11r state).
	ReassocProcessing sim.Time
	// ReassocAttempts bounds management-frame tries per roam.
	ReassocAttempts int
	// RetryGap spaces successive reassociation attempts.
	RetryGap sim.Time
	// StaleAfter treats an AP unheard for this long as gone (its RSSI no
	// longer counts, and a silent serving AP counts as below threshold).
	StaleAfter sim.Time
}

// DefaultRoamerConfig returns the §5.1 client policy.
func DefaultRoamerConfig() RoamerConfig {
	return RoamerConfig{
		// The threshold sits near the bottom of the usable range: like the
		// commercial clients the paper measures (§2), the baseline hangs on
		// to its AP until the link is nearly dead before roaming.
		ThresholdDBm:      -82,
		Hysteresis:        sim.Second,
		EWMA:              0.92,
		ReassocProcessing: 50 * sim.Millisecond,
		ReassocAttempts:   5,
		RetryGap:          20 * sim.Millisecond,
		StaleAfter:        sim.Second,
	}
}

// APAddr identifies one AP to the roamer.
type APAddr struct {
	ID  int
	MAC packet.MACAddr
}

// Roamer is the baseline client-side handover policy.
type Roamer struct {
	cfg RoamerConfig
	eng *sim.Engine
	cl  *client.Client
	net *Network
	aps []APAddr

	rssi     []float64
	heard    []bool
	lastSeen []sim.Time
	current  int
	lastRoam sim.Time
	roaming  bool

	// Stats.
	Roams        uint64
	RoamFailures uint64
}

// NewRoamer attaches roaming logic to a client. The client must already be
// associated to startAP (both locally and in the Network).
func NewRoamer(cfg RoamerConfig, eng *sim.Engine, cl *client.Client, net *Network, aps []APAddr, startAP int) *Roamer {
	r := &Roamer{
		cfg:      cfg,
		eng:      eng,
		cl:       cl,
		net:      net,
		aps:      aps,
		rssi:     make([]float64, len(aps)),
		heard:    make([]bool, len(aps)),
		lastSeen: make([]sim.Time, len(aps)),
		current:  startAP,
	}
	cl.OnBeacon = r.onBeacon
	return r
}

// Current returns the AP the roamer believes it is associated with.
func (r *Roamer) Current() int { return r.current }

func (r *Roamer) apIndex(mac packet.MACAddr) int {
	for _, a := range r.aps {
		if a.MAC == mac {
			return a.ID
		}
	}
	return -1
}

func (r *Roamer) onBeacon(from packet.MACAddr, rssiDBm float64, at sim.Time) {
	i := r.apIndex(from)
	if i < 0 {
		return
	}
	if !r.heard[i] {
		r.rssi[i] = rssiDBm
		r.heard[i] = true
	} else {
		r.rssi[i] = r.cfg.EWMA*r.rssi[i] + (1-r.cfg.EWMA)*rssiDBm
	}
	r.lastSeen[i] = at
	r.evaluate(at)
}

// evaluate applies the §5.1 policy: switch to the highest-RSSI AP once the
// serving AP drops below the threshold, at most once per hysteresis period.
func (r *Roamer) evaluate(now sim.Time) {
	if r.roaming || now-r.lastRoam < r.cfg.Hysteresis {
		return
	}
	servingRSSI := math.Inf(-1)
	if r.heard[r.current] && now-r.lastSeen[r.current] <= r.cfg.StaleAfter {
		servingRSSI = r.rssi[r.current]
	}
	if servingRSSI >= r.cfg.ThresholdDBm {
		return
	}
	best, bestRSSI := -1, math.Inf(-1)
	for i := range r.aps {
		if !r.heard[i] || now-r.lastSeen[i] > r.cfg.StaleAfter {
			continue
		}
		if r.rssi[i] > bestRSSI {
			best, bestRSSI = i, r.rssi[i]
		}
	}
	if best < 0 || best == r.current || bestRSSI <= servingRSSI {
		return
	}
	r.reassociate(best, 0)
}

// reassociate runs the management exchange toward the target AP, retrying
// a bounded number of times (the client in the paper's §2 experiment is
// seen retransmitting its re-association frames).
func (r *Roamer) reassociate(target, attempt int) {
	r.roaming = true
	st := r.cl.Station()
	to := r.aps[target].MAC
	from := r.cl.Config().MAC
	st.SendOneShot(func() *mac.Frame {
		return &mac.Frame{
			Kind:  mac.KindMgmt,
			From:  from,
			To:    to,
			MCS:   0,
			MPDUs: []*mac.MPDU{{Seq: st.NextSeq(to), Bytes: 120}},
		}
	}, func(res *mac.TxResult) {
		if res != nil && res.BAReceived {
			r.eng.After(r.cfg.ReassocProcessing, func() { r.finishRoam(target) })
			return
		}
		if attempt+1 < r.cfg.ReassocAttempts {
			r.eng.After(r.cfg.RetryGap, func() { r.reassociate(target, attempt+1) })
			return
		}
		r.RoamFailures++
		r.roaming = false
		r.lastRoam = r.eng.Now() // back off a full hysteresis before retrying
	})
}

func (r *Roamer) finishRoam(target int) {
	r.current = target
	r.cl.SetDest(r.aps[target].MAC)
	r.net.ClientAssociated(r.cl.Config().MAC, target)
	r.lastRoam = r.eng.Now()
	r.roaming = false
	r.Roams++
}
