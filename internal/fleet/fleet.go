// Package fleet deploys many independent WGTT corridor cells — the §7
// "large area deployment" question taken to a transit-network scale. Each
// cell is a complete, isolated simulation (its own sim.Engine, radio
// channel, APs, controller, and vehicles, assembled via core.Build); the
// fleet engine schedules cells across a bounded worker pool and merges the
// per-cell results into one deployment report.
//
// Determinism contract: every per-cell quantity is derived from the pair
// (fleet seed, cell index) alone — the cell's scenario seed, its Poisson
// vehicle arrivals, the speed and workload of every vehicle. Cells share
// no mutable state, and results land in a slice slot owned by the cell
// index, so the aggregate report is byte-identical no matter how many
// workers run the cells or how the scheduler interleaves them. See
// DESIGN.md §8.
package fleet

import (
	"fmt"
	"math"
	"path/filepath"

	"wgtt/internal/chaos"
	"wgtt/internal/mobility"
	"wgtt/internal/selector"
	"wgtt/internal/sim"
	"wgtt/internal/urban"
)

// Config describes a fleet deployment.
type Config struct {
	// Cells is the number of corridor cells to deploy.
	Cells int
	// Seed is the fleet master seed; all per-cell randomness derives from
	// (Seed, cell index).
	Seed uint64
	// Workers bounds simulation concurrency (<= 1 runs sequentially).
	// Worker count never affects results, only wall-clock time.
	Workers int

	// APsPerCell is the corridor length in APs (default 8, the testbed).
	APsPerCell int
	// SpacingM is the AP spacing in meters (default 7.5, Fig. 9's mean).
	SpacingM float64
	// MarginM is the entry/exit margin around the array (default 10).
	MarginM float64

	// ArrivalsPerMin is the Poisson vehicle arrival rate per corridor
	// (default 6). Vehicles arrive over ArrivalWindow; the first vehicle
	// always arrives at t=0 so no cell is empty.
	ArrivalsPerMin float64
	// ArrivalWindow is how long each cell admits vehicles (default 20 s).
	ArrivalWindow sim.Time
	// MaxVehicles caps per-cell vehicle count (default 4; simulation cost
	// grows quadratically with co-channel stations).
	MaxVehicles int
	// SpeedsMPH is the speed mix vehicles draw from, uniformly
	// (default {15, 25, 35}).
	SpeedsMPH []float64
	// TCPFraction of vehicles carry a bulk downlink TCP workload; the rest
	// carry a CBR downlink UDP flow (default 0.5).
	TCPFraction float64
	// UDPRateMbps is the offered CBR load of UDP vehicles (default 20).
	UDPRateMbps float64

	// SamplePeriod paces the switching-accuracy oracle sampling
	// (default 50 ms).
	SamplePeriod sim.Time

	// TraceDir, when non-empty, writes one JSONL event trace per cell
	// (cell-0000.jsonl, …) via internal/trace.
	TraceDir string

	// Metrics enables per-cell observability recording (internal/metrics):
	// each cell gets its own registry and reports a snapshot on
	// CellResult.Metrics. Purely additive — the deployment report text is
	// unchanged, preserving the byte-identical determinism contract.
	Metrics bool

	// Domains shards each cell's controller tier (DESIGN.md §13): the
	// cell's APs split into this many contiguous domains, each run by its
	// own controller instance, and vehicles are handed off between
	// controllers as they drive across domain boundaries. 0 or 1 keeps the
	// single-controller cell. Federation keeps the determinism contract:
	// reports are byte-identical for any worker count.
	Domains int

	// Chaos injects deterministic faults into every cell (DESIGN.md §11).
	// Each cell derives its own fault plan from its (fleet seed, cell
	// index)-derived scenario seed, so chaos keeps the determinism
	// contract: reports are byte-identical for any worker count. nil
	// disables injection and leaves the report format untouched.
	Chaos *chaos.Config

	// Selector picks the AP-selection policy every cell's controller runs
	// (DESIGN.md §15). nil keeps the §3.1.1 windowed-median default; the
	// policy is pure and deterministic, so any choice preserves the
	// byte-identical determinism contract.
	Selector *selector.Config

	// Urban switches every cell from a straight corridor to a street-grid
	// city (DESIGN.md §16): the cell's APs line its streets, and its
	// traffic — buses with rider groups, routed cars, pedestrians — comes
	// from the urban planner instead of the Poisson corridor arrivals.
	// Each cell draws its own city from its (fleet seed, cell index) seed.
	// nil keeps corridor cells and the report byte-identical to pre-urban
	// builds.
	Urban *urban.Config

	// Metro switches the fleet from N independent cells to one connected
	// city (DESIGN.md §17): a single urban.Graph tiled into metro cells,
	// each tile its own core.Network advancing in lockstep epochs, with
	// clients migrating between tile simulations as their routes cross tile
	// seams. Run via RunMetro, not Run. Mutually exclusive with Urban,
	// Domains and Chaos (each tile is a single-domain cell).
	Metro *urban.MetroConfig
	// MetroEpoch is the metro's epoch length — how long every tile advances
	// between boundary-exchange barriers (default 500 ms). Shorter epochs
	// admit migrating clients sooner at the cost of more barriers; the
	// value changes the results (admission is quantized to epoch edges) but
	// never the determinism: for a fixed epoch, reports are byte-identical
	// for any worker count.
	MetroEpoch sim.Time
	// MetroIsolated cuts the seams (the ext-metro ablation): every client
	// lives only in its first tile's simulation for the whole horizon, so a
	// vehicle that drives out of its birth tile just recedes from that
	// tile's APs — the pre-metro "N isolated cells" behavior on the same
	// city. No migrations happen.
	MetroIsolated bool

	// RunID, when non-empty, prefixes per-cell trace file names
	// (<run-id>-cell-0000.jsonl) so concurrent fleet invocations sharing
	// one TraceDir cannot clobber each other's JSONL traces.
	RunID string

	// Progress, when non-nil, is called after each unit of work completes:
	// (cells done, cells total) for Run, (epochs done, epochs total) for
	// RunMetro. Calls are serialized but may come from worker goroutines;
	// keep the hook fast. Purely observational — it must not influence
	// results.
	Progress func(done, total int)
}

// tracePath names one cell's JSONL event trace under cfg.TraceDir,
// prefixed with the fleet run ID when one is set.
func tracePath(cfg Config, cell int) string {
	name := fmt.Sprintf("cell-%04d.jsonl", cell)
	if cfg.RunID != "" {
		name = fmt.Sprintf("%s-%s", cfg.RunID, name)
	}
	return filepath.Join(cfg.TraceDir, name)
}

// federatedDomains reports how many controller domains each cell runs: the
// urban city partition wins when set, else the corridor Domains knob.
// 0 or 1 means a single controller.
func (c Config) federatedDomains() int {
	if c.Urban != nil && c.Urban.Domains > 1 {
		return c.Urban.Domains
	}
	return c.Domains
}

// minHeadwayS is the minimum inter-arrival gap in seconds — the
// car-following headway that keeps two vehicles from entering the
// corridor virtually co-located.
const minHeadwayS = 1.5

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Cells <= 0 {
		c.Cells = 1
	}
	if c.APsPerCell <= 0 {
		c.APsPerCell = 8
	}
	if c.SpacingM <= 0 {
		c.SpacingM = 7.5
	}
	if c.MarginM <= 0 {
		c.MarginM = 10
	}
	if c.ArrivalsPerMin <= 0 {
		c.ArrivalsPerMin = 6
	}
	if c.ArrivalWindow <= 0 {
		c.ArrivalWindow = 20 * sim.Second
	}
	if c.MaxVehicles <= 0 {
		c.MaxVehicles = 4
	}
	if len(c.SpeedsMPH) == 0 {
		c.SpeedsMPH = []float64{15, 25, 35}
	}
	if c.TCPFraction < 0 {
		c.TCPFraction = 0
	} else if c.TCPFraction == 0 {
		c.TCPFraction = 0.5
	}
	if c.UDPRateMbps <= 0 {
		c.UDPRateMbps = 20
	}
	if c.SamplePeriod <= 0 {
		c.SamplePeriod = 50 * sim.Millisecond
	}
	return c
}

// Vehicle is one planned drive through a cell.
type Vehicle struct {
	// Arrival is when the vehicle crosses the corridor entry point; it
	// approaches from up the road at constant speed before that.
	Arrival sim.Time
	// SpeedMPH is the vehicle's constant speed.
	SpeedMPH float64
	// TCP selects the workload: bulk downlink TCP when true, CBR downlink
	// UDP otherwise.
	TCP bool
}

// CellPlan is everything a cell run is parameterized by. It is a pure
// function of (fleet seed, cell index) — the heart of the determinism
// contract.
type CellPlan struct {
	Cell     int
	Seed     uint64 // scenario seed for core.Build
	Vehicles []Vehicle
	// Duration is the cell horizon: the last vehicle's exit plus a tail.
	Duration sim.Time
}

// PlanCell derives cell's plan from the fleet configuration. Randomness
// comes from named sim.RNG streams of the fleet seed, so neither worker
// scheduling nor other cells' draws can perturb it.
func PlanCell(cfg Config, cell int) CellPlan {
	cfg = cfg.withDefaults()
	frng := sim.NewRNG(cfg.Seed)
	plan := CellPlan{
		Cell: cell,
		Seed: frng.Stream(fmt.Sprintf("fleet/cell/%d/seed", cell)).Uint64(),
	}
	if cfg.Urban != nil {
		// Urban cells draw their traffic from the city planner under the
		// cell seed; the corridor arrival process does not apply.
		return plan
	}
	arr := frng.Stream(fmt.Sprintf("fleet/cell/%d/arrivals", cell))
	lambda := cfg.ArrivalsPerMin / 60 // arrivals per second
	transit := func(speedMPH float64) sim.Time {
		span := float64(cfg.APsPerCell-1) * cfg.SpacingM
		return sim.FromSeconds((span + 2*cfg.MarginM) / mobility.MPH(speedMPH))
	}
	at := sim.Time(0) // first vehicle enters immediately: no empty cells
	for at <= cfg.ArrivalWindow && len(plan.Vehicles) < cfg.MaxVehicles {
		v := Vehicle{
			Arrival:  at,
			SpeedMPH: cfg.SpeedsMPH[arr.IntN(len(cfg.SpeedsMPH))],
			TCP:      arr.Float64() < cfg.TCPFraction,
		}
		plan.Vehicles = append(plan.Vehicles, v)
		if exit := v.Arrival + transit(v.SpeedMPH); exit > plan.Duration {
			plan.Duration = exit
		}
		gap := arr.ExpFloat64() / lambda
		if gap < minHeadwayS {
			// Real traffic keeps a car-following headway; without it two
			// Poisson draws can put vehicles virtually on top of each
			// other at the corridor entrance.
			gap = minHeadwayS
		}
		if math.IsInf(gap, 0) || gap > cfg.ArrivalWindow.Seconds() {
			// One pathological draw must not stretch the horizon forever.
			gap = cfg.ArrivalWindow.Seconds()
		}
		at += sim.FromSeconds(gap)
	}
	plan.Duration += 2 * sim.Second // drain tail, as in the paper's drives
	return plan
}
