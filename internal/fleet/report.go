package fleet

import (
	"fmt"
	"strings"

	"wgtt/internal/metrics"
	"wgtt/internal/stats"
)

// Result is a completed fleet deployment.
type Result struct {
	Cfg   Config
	Cells []CellResult
}

// Run deploys cfg.Cells corridor cells across cfg.Workers workers and
// returns the merged result. Cell i's outcome depends only on (cfg, i), and
// cells are aggregated in index order, so the result — and its rendered
// report — is identical for every worker count.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Metro != nil {
		return nil, fmt.Errorf("fleet: metro deployments run via RunMetro")
	}
	cells := make([]CellResult, cfg.Cells)
	errs := make([]error, cfg.Cells)
	progress := progressFunc(cfg, cfg.Cells)
	ForEach(cfg.Cells, cfg.Workers, func(i int) {
		cells[i], errs[i] = RunCell(cfg, i)
		progress()
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Result{Cfg: cfg, Cells: cells}, nil
}

// MergedMetrics combines the per-cell observability snapshots in cell index
// order (nil when cfg.Metrics was off). Cell order — not completion order —
// keeps the merged snapshot deterministic across worker counts.
func (r *Result) MergedMetrics() *metrics.Snapshot {
	var snaps []metrics.Snapshot
	for i := range r.Cells {
		if r.Cells[i].Metrics != nil {
			snaps = append(snaps, *r.Cells[i].Metrics)
		}
	}
	if len(snaps) == 0 {
		return nil
	}
	merged := metrics.Merge(snaps...)
	return &merged
}

// Render produces the deployment report. It must stay a pure function of
// the cell results (no wall-clock, no worker count) to preserve the
// byte-identical-report determinism contract.
func (r *Result) Render() string {
	var b strings.Builder

	// Fleet-wide distributions, merged from per-cell CDFs in cell order.
	vehicleMbps := &stats.CDF{}
	cellMbps := &stats.CDF{}
	accuracy := &stats.CDF{}
	udpLoss := &stats.CDF{}
	var vehicles, tcp, udp int
	var capacity float64
	var switches, stopRtx, upUnique, upDup uint64
	for i := range r.Cells {
		c := &r.Cells[i]
		per := &stats.CDF{}
		per.AddAll(c.PerVehicleMbps)
		vehicleMbps.Merge(per)
		loss := &stats.CDF{}
		loss.AddAll(c.UDPLoss)
		udpLoss.Merge(loss)
		cellMbps.Add(c.AggMbps)
		accuracy.Add(c.AccuracyPct)
		vehicles += c.Vehicles
		tcp += c.TCPFlows
		udp += c.UDPFlows
		capacity += c.AggMbps
		switches += c.Switches
		stopRtx += c.StopRetransmits
		upUnique += c.UplinkUnique
		upDup += c.UplinkDuplicate
	}

	fmt.Fprintf(&b, "WGTT fleet deployment report\n")
	if u := r.Cfg.Urban; u != nil {
		fmt.Fprintf(&b, "cells %d  city %dx%d blocks (%.0f m)  fleet seed %d\n",
			len(r.Cells), u.Rows, u.Cols, u.BlockM, r.Cfg.Seed)
		fmt.Fprintf(&b, "clients %d  offered udp %.2f Mb/s each\n",
			vehicles, r.Cfg.UDPRateMbps)
	} else {
		fmt.Fprintf(&b, "cells %d  aps/cell %d  spacing %.1f m  fleet seed %d\n",
			len(r.Cells), r.Cfg.APsPerCell, r.Cfg.SpacingM, r.Cfg.Seed)
		fmt.Fprintf(&b, "vehicles %d (tcp %d / udp %d)  offered udp %.0f Mb/s\n",
			vehicles, tcp, udp, r.Cfg.UDPRateMbps)
	}
	fmt.Fprintf(&b, "fleet capacity %.2f Mb/s delivered (mean %.2f Mb/s per cell)\n",
		capacity, capacity/float64(len(r.Cells)))
	fmt.Fprintf(&b, "switching %d completed (%d stop retransmissions), accuracy mean %.1f%%\n",
		switches, stopRtx, accuracy.Mean())
	fmt.Fprintf(&b, "uplink %d unique / %d duplicate packets\n\n", upUnique, upDup)

	b.WriteString("Per-cell capacity\n")
	t := &stats.Table{Header: []string{
		"cell", "seed", "veh", "Mb/s", "acc%", "switches", "stop-rtx", "airtime%"}}
	for i := range r.Cells {
		c := &r.Cells[i]
		t.AddRow(fmt.Sprintf("%d", c.Cell), fmt.Sprintf("%016x", c.Seed),
			fmt.Sprintf("%d", c.Vehicles), stats.F(c.AggMbps), stats.F(c.AccuracyPct),
			fmt.Sprintf("%d", c.Switches), fmt.Sprintf("%d", c.StopRetransmits),
			stats.F(c.AirtimePct))
	}
	b.WriteString(t.String())
	b.WriteString("\n")

	b.WriteString("Merged distributions\n")
	d := &stats.Table{Header: []string{"metric", "n", "p5", "p25", "p50", "p75", "p95", "max"}}
	row := func(name string, c *stats.CDF) {
		qs := stats.Quantiles(c, 0.05, 0.25, 0.50, 0.75, 0.95, 1)
		cells := []string{name, fmt.Sprintf("%d", c.N())}
		for _, q := range qs {
			cells = append(cells, stats.F(q))
		}
		d.AddRow(cells...)
	}
	row("vehicle goodput (Mb/s)", vehicleMbps)
	row("cell capacity (Mb/s)", cellMbps)
	row("switch accuracy (%)", accuracy)
	row("udp loss fraction", udpLoss)
	b.WriteString(d.String())

	// Federation section, present only for sharded controller tiers so
	// single-controller reports stay byte-identical to their pre-federation
	// form.
	if nDom := r.Cfg.federatedDomains(); nDom > 1 {
		var offers, handoffs, aborts, cross uint64
		for i := range r.Cells {
			c := &r.Cells[i]
			offers += c.HandoffOffers
			handoffs += c.DomainHandoffs
			aborts += c.HandoffAborts
			cross += c.CrossSwitches
		}
		fmt.Fprintf(&b, "\nFederation (%d domains per cell, DESIGN.md §13)\n", nDom)
		fmt.Fprintf(&b, "handoff offers %d  adoptions %d  aborts %d  cross-domain switches %d\n",
			offers, handoffs, aborts, cross)
		ft := &stats.Table{Header: []string{
			"cell", "offers", "adoptions", "aborts", "cross-switch"}}
		for i := range r.Cells {
			c := &r.Cells[i]
			ft.AddRow(fmt.Sprintf("%d", c.Cell), fmt.Sprintf("%d", c.HandoffOffers),
				fmt.Sprintf("%d", c.DomainHandoffs), fmt.Sprintf("%d", c.HandoffAborts),
				fmt.Sprintf("%d", c.CrossSwitches))
		}
		b.WriteString(ft.String())
	}

	// Resilience section, present only under fault injection so chaos-free
	// reports stay byte-identical to their pre-chaos form.
	if r.Cfg.Chaos != nil {
		var crashes, burstDrops, blackoutDrops, dead, readmitted, forced uint64
		for i := range r.Cells {
			c := &r.Cells[i]
			crashes += c.APCrashes
			burstDrops += c.BurstDrops
			blackoutDrops += c.BlackoutDrops
			dead += c.APsMarkedDead
			readmitted += c.APsReadmitted
			forced += c.ForcedSwitches
		}
		b.WriteString("\nResilience (fault injection, DESIGN.md §11)\n")
		fmt.Fprintf(&b, "ap crashes %d  marked dead %d  readmitted %d  forced switches %d\n",
			crashes, dead, readmitted, forced)
		fmt.Fprintf(&b, "backhaul burst drops %d  csi blackout drops %d\n", burstDrops, blackoutDrops)
		rt := &stats.Table{Header: []string{
			"cell", "crashes", "dead", "readmit", "forced", "burst-drop", "csi-drop"}}
		for i := range r.Cells {
			c := &r.Cells[i]
			rt.AddRow(fmt.Sprintf("%d", c.Cell), fmt.Sprintf("%d", c.APCrashes),
				fmt.Sprintf("%d", c.APsMarkedDead), fmt.Sprintf("%d", c.APsReadmitted),
				fmt.Sprintf("%d", c.ForcedSwitches), fmt.Sprintf("%d", c.BurstDrops),
				fmt.Sprintf("%d", c.BlackoutDrops))
		}
		b.WriteString(rt.String())
	}

	// Urban section, present only for street-grid city cells so corridor
	// reports stay byte-identical to their pre-urban form.
	if r.Cfg.Urban != nil {
		var turns, lights, crossings uint64
		var buses, riders, cars, peds int
		for i := range r.Cells {
			c := &r.Cells[i]
			turns += c.Turns
			lights += c.LightStops
			crossings += c.RouteCrossings
			buses += c.UrbanBuses
			riders += c.UrbanRiders
			cars += c.UrbanCars
			peds += c.UrbanPedestrians
		}
		fmt.Fprintf(&b, "\nUrban workload (%dx%d grid per cell, DESIGN.md §16)\n",
			r.Cfg.Urban.Rows, r.Cfg.Urban.Cols)
		fmt.Fprintf(&b, "buses %d (riders %d)  cars %d  pedestrians %d\n",
			buses, riders, cars, peds)
		fmt.Fprintf(&b, "turns %d  light stops %d  inter-cell route crossings %d\n",
			turns, lights, crossings)
		ut := &stats.Table{Header: []string{
			"cell", "buses", "riders", "cars", "peds", "turns", "lights", "crossings"}}
		for i := range r.Cells {
			c := &r.Cells[i]
			ut.AddRow(fmt.Sprintf("%d", c.Cell), fmt.Sprintf("%d", c.UrbanBuses),
				fmt.Sprintf("%d", c.UrbanRiders), fmt.Sprintf("%d", c.UrbanCars),
				fmt.Sprintf("%d", c.UrbanPedestrians), fmt.Sprintf("%d", c.Turns),
				fmt.Sprintf("%d", c.LightStops), fmt.Sprintf("%d", c.RouteCrossings))
		}
		b.WriteString(ut.String())
	}
	return b.String()
}
