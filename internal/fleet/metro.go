package fleet

import (
	"fmt"
	"sort"
	"strings"

	"wgtt/internal/core"
	"wgtt/internal/metrics"
	"wgtt/internal/mobility"
	"wgtt/internal/packet"
	"wgtt/internal/radio"
	"wgtt/internal/sim"
	"wgtt/internal/stats"
	"wgtt/internal/urban"
)

// This file is the metro engine (DESIGN.md §17): one connected city cut
// into an R×C grid of metro cells, each tile a complete single-domain WGTT
// simulation, advancing in lockstep time epochs on the fleet worker pool.
// Clients whose routes cross a tile seam migrate between tile simulations
// at epoch barriers: the source cell exports the client's volatile
// controller state as a §13 DomainHandoffCommit, the commit round-trips
// through the federation wire codec, and the destination cell admits the
// client at the AP nearest its crossing point, resuming its downlink flow
// at the exact sequence cursor the source stopped at.
//
// Determinism contract: the migration schedule is precomputed from the
// (config, seed)-pure metro plan; migrations are grouped by epoch, sorted
// by (crossing time, metro client ID), and applied on the scheduler
// goroutine while every tile's clock sits at the same barrier instant.
// Tiles share no mutable state between barriers, so the report is
// byte-identical for any worker count.

// defaultMetroEpoch is the epoch length when Config.MetroEpoch is unset.
const defaultMetroEpoch = 500 * sim.Millisecond

// migration is one planned seam crossing: client leaves tile From for tile
// To at time At. Applied at the first epoch barrier at or after At.
type migration struct {
	At       sim.Time
	ClientID int // metro client index — the sort tie-breaker
	From, To int
}

// tileClient is one client's presence in one tile simulation.
type tileClient struct {
	MetroID int
	Local   int // index into the tile scenario's client list
	Flow    *core.DownUDP
}

// metroTile is one running metro cell.
type metroTile struct {
	Tile    int
	Net     *core.Network
	Clients []*tileClient
	byMetro map[int]*tileClient
	// MigrationsIn/Out count the seam crossings this tile admitted/exported.
	MigrationsIn, MigrationsOut uint64
}

// metroRun is a metro deployment in flight: built tiles, the epoch
// schedule, and the migration queue. Step advances every tile one epoch and
// applies the barrier's migrations; the split (rather than one closed loop)
// is what BenchmarkMetroEpoch meters.
type metroRun struct {
	Cfg   Config
	Plan  *urban.MetroPlan
	Epoch sim.Time

	Tiles []*metroTile // index = tile id; nil for tiles no route visits

	// byEpoch[k] holds the migrations applied at barrier (k+1)·Epoch,
	// sorted by (time, client id).
	byEpoch   map[int][]migration
	epochsRun int
	epochs    int

	nextHandoffID uint32
	stats         MetroStats
	reg           *metrics.Registry
	met           struct {
		migrations   *metrics.Counter
		seamOutageMS *metrics.Counter
		wireBytes    *metrics.Counter
	}
}

// MetroStats aggregates the metro-wide outcomes of a run.
type MetroStats struct {
	// Migrations is the number of cross-cell client migrations performed.
	Migrations uint64
	// SeamOutage is the total client-time lost to barrier quantization:
	// the sum over migrations of (admission barrier − crossing time).
	SeamOutage sim.Time
	// HandoffWireBytes is the encoded size of every §13 commit carried
	// across a seam — the metro's inter-cell control-plane volume.
	HandoffWireBytes uint64
	// Sent and Received are the metro-wide downlink datagram totals; loss
	// is their gap (sequence cursors continue across migrations, so the
	// totals span cells).
	Sent, Received uint64
	Bytes          uint64
	Switches       uint64
	CSIReports     uint64
}

// MetroResult is a completed metro deployment.
type MetroResult struct {
	Cfg       Config
	Tiling    urban.Tiling
	Seed      uint64
	DurationS float64
	EpochMS   float64
	Epochs    int

	Clients    int
	BuiltTiles int
	// Crossings is the planned seam-crossing count (every crossing migrates
	// unless MetroIsolated cut the seams).
	Crossings int

	Stats MetroStats

	// Per-client metro-wide outcomes, indexed by metro client ID.
	PerClientMbps []float64
	PerClientLoss []float64
	AggMbps       float64

	Tiles []MetroTileResult

	// Metrics is the metro's observability snapshot (migration counters
	// plus every tile's registry merged in tile order), set when
	// cfg.Metrics is enabled. Kept out of Render so the byte-identical
	// determinism contract is unaffected.
	Metrics *metrics.Snapshot
}

// MetroTileResult is one tile's slice of the metro outcome.
type MetroTileResult struct {
	Tile                        int
	APs                         int
	Clients                     int // clients whose routes ever visit the tile
	Resident                    int // clients whose routes start in the tile
	Bytes                       uint64
	Switches                    uint64
	AirtimePct                  float64
	MigrationsIn, MigrationsOut uint64
}

// RunMetro builds and runs a connected metro to completion.
func RunMetro(cfg Config) (*MetroResult, error) {
	m, err := newMetroRun(cfg)
	if err != nil {
		return nil, err
	}
	progress := progressFunc(m.Cfg, m.epochs)
	for m.Step() {
		progress()
	}
	progress()
	return m.finish(), nil
}

// newMetroRun plans the city, builds every visited tile's network, and
// precomputes the migration schedule.
func newMetroRun(cfg Config) (*metroRun, error) {
	cfg = cfg.withDefaults()
	if cfg.Metro == nil {
		return nil, fmt.Errorf("fleet: metro run without Config.Metro")
	}
	if cfg.Urban != nil || cfg.Chaos != nil || cfg.Domains > 1 {
		return nil, fmt.Errorf("fleet: metro is mutually exclusive with Urban, Chaos, and Domains")
	}
	epoch := cfg.MetroEpoch
	if epoch <= 0 {
		epoch = defaultMetroEpoch
	}
	seed := sim.NewRNG(cfg.Seed).Stream("fleet/metro/seed").Uint64()
	plan, err := urban.BuildMetroPlan(*cfg.Metro, seed)
	if err != nil {
		return nil, fmt.Errorf("fleet: metro plan: %w", err)
	}
	m := &metroRun{
		Cfg:     cfg,
		Plan:    plan,
		Epoch:   epoch,
		Tiles:   make([]*metroTile, cfg.Metro.Tiles.N()),
		byEpoch: make(map[int][]migration),
		epochs:  int((plan.Duration() + epoch - 1) / epoch),
	}
	if cfg.Metrics {
		m.reg = metrics.NewRegistry()
		m.met.migrations = m.reg.Counter("metro", "migrations")
		m.met.seamOutageMS = m.reg.Counter("metro", "seam_outage_ms")
		m.met.wireBytes = m.reg.Counter("metro", "handoff_wire_bytes")
	}

	// Bind each client to the tiles its route visits. Isolated mode pins
	// every client to its first tile for the whole horizon — the same city,
	// seams cut.
	visitors := make([][]presence, len(m.Tiles))
	for ci, mc := range plan.Clients {
		if cfg.MetroIsolated {
			t := mc.Visits[0].Tile
			visitors[t] = append(visitors[t], presence{metroID: ci, from: 0, to: plan.Duration()})
			continue
		}
		first := make(map[int]sim.Time)
		last := make(map[int]sim.Time)
		for _, v := range mc.Visits {
			if _, ok := first[v.Tile]; !ok {
				first[v.Tile] = v.Enter
			}
			last[v.Tile] = v.Exit
		}
		for t, from := range first {
			visitors[t] = append(visitors[t], presence{
				metroID: ci, from: from, to: last[t], deferred: from > 0,
			})
		}
		for k := 1; k < len(mc.Visits); k++ {
			mig := migration{
				At:       mc.Visits[k].Enter,
				ClientID: ci,
				From:     mc.Visits[k-1].Tile,
				To:       mc.Visits[k].Tile,
			}
			e := int(mig.At / epoch)
			m.byEpoch[e] = append(m.byEpoch[e], mig)
		}
	}
	for _, migs := range m.byEpoch {
		sort.Slice(migs, func(i, j int) bool {
			if migs[i].At != migs[j].At {
				return migs[i].At < migs[j].At
			}
			return migs[i].ClientID < migs[j].ClientID
		})
	}

	// Build the visited tiles. Tile build order is index order and every
	// quantity derives from (plan, tile), so the build is deterministic;
	// tiles no route ever enters stay nil (core.Build needs ≥ 1 client, and
	// an empty simulation would change nothing).
	frng := sim.NewRNG(cfg.Seed)
	for t := range m.Tiles {
		if len(visitors[t]) == 0 {
			continue
		}
		sort.Slice(visitors[t], func(i, j int) bool {
			return visitors[t][i].metroID < visitors[t][j].metroID
		})
		tile, err := m.buildTile(t, visitors[t], frng)
		if err != nil {
			return nil, err
		}
		m.Tiles[t] = tile
	}
	return m, nil
}

// presence is one client's residence window in one tile: from first entry
// to last exit, deferred when the window does not open at time zero.
type presence struct {
	metroID  int
	from, to sim.Time
	deferred bool
}

// buildTile assembles one metro cell: the tile's AP sites, every visiting
// client clipped to its presence window, and one downlink UDP flow per
// client. Clients whose first visit starts mid-run are built deferred —
// AdmitCellHandoff completes their bootstrap when they migrate in.
func (m *metroRun) buildTile(t int, visitors []presence, frng *sim.RNG) (*metroTile, error) {
	plan := m.Plan
	params := radio.DefaultParams()
	params.Obstruction = plan.City.Graph.BlockageDB
	cc := core.CityControllerConfig()
	s := core.Scenario{
		Mode:              core.ModeWGTT,
		Seed:              frng.Stream(fmt.Sprintf("fleet/metro/tile/%d/seed", t)).Uint64(),
		Duration:          plan.Duration(),
		Radio:             &params,
		Controller:        &cc,
		Selector:          m.Cfg.Selector,
		OmniAPs:           true,
		APLossDB:          core.CityAPLossDB,
		KeepaliveInterval: 20 * sim.Millisecond,
	}
	for _, site := range plan.TileAPs[t] {
		s.APPositions = append(s.APPositions, plan.City.APs[site].Pos)
	}
	for _, v := range visitors {
		cp := plan.Clients[v.metroID].Plan
		var tr mobility.Trace = cp.Trace
		if !m.Cfg.MetroIsolated {
			// Clip to the presence window: outside it the client sits
			// parked at its seam-crossing point instead of extrapolating
			// into another tile's geography. Isolated mode keeps the full
			// city trace — the client drives out of its birth tile's
			// coverage, which is exactly the behavior being ablated.
			tr = mobility.Clip{Inner: cp.Trace, From: v.from, To: v.to}
		}
		s.Clients = append(s.Clients, core.ClientSpec{
			Trace:    tr,
			SpeedMPH: cp.SpeedMPH,
			Deferred: v.deferred,
		})
	}
	n, err := core.Build(s)
	if err != nil {
		return nil, fmt.Errorf("fleet: metro tile %d: %w", t, err)
	}
	if m.Cfg.Metrics {
		n.EnableMetrics()
	}
	tile := &metroTile{Tile: t, Net: n, byMetro: make(map[int]*tileClient)}
	for local, v := range visitors {
		tc := &tileClient{
			MetroID: v.metroID,
			Local:   local,
			Flow:    n.AddDownlinkUDP(local, m.Cfg.UDPRateMbps, 1400),
		}
		tile.Clients = append(tile.Clients, tc)
		tile.byMetro[v.metroID] = tc
		if !v.deferred {
			tc.Flow.Sender.Start()
		}
		if m.Cfg.MetroIsolated {
			continue
		}
		// Exits are in-simulation events: the flow and the keepalive stream
		// stop at the instant the route leaves the tile, not at the next
		// barrier, so a departed client stops consuming the tile's airtime
		// immediately. (The controller keeps its state until the barrier's
		// export — harmless, it just serves a silent client.)
		cl := n.Clients[local]
		sender := tc.Flow.Sender
		for _, vis := range plan.Clients[v.metroID].Visits {
			if vis.Tile != t || vis.Exit >= plan.Duration() {
				continue
			}
			n.Eng.At(vis.Exit, func() {
				sender.Stop()
				cl.StopKeepalive()
			})
		}
	}
	return tile, nil
}

// Step advances every tile one epoch and applies the barrier's migrations.
// Returns false once the horizon is reached. Tiles run concurrently on the
// worker pool; migrations apply on the calling goroutine in (time, client)
// order while every clock sits at the barrier.
func (m *metroRun) Step() bool {
	if m.epochsRun >= m.epochs {
		return false
	}
	end := sim.Time(m.epochsRun+1) * m.Epoch
	if end > m.Plan.Duration() {
		end = m.Plan.Duration()
	}
	var built []*metroTile
	for _, tile := range m.Tiles {
		if tile != nil {
			built = append(built, tile)
		}
	}
	ForEach(len(built), m.Cfg.Workers, func(i int) {
		built[i].Net.RunUntil(end)
	})
	for _, mig := range m.byEpoch[m.epochsRun] {
		m.migrate(mig, end)
	}
	m.epochsRun++
	return m.epochsRun < m.epochs
}

// migrate moves one client between tile simulations at a barrier. The §13
// commit is encoded and decoded through the real federation wire format, so
// exactly what the protocol can carry crosses the seam — identity is the
// one translation the metro layer adds, since each cell names its clients
// in its own local MAC/IP namespace.
func (m *metroRun) migrate(mig migration, barrier sim.Time) {
	src, dst := m.Tiles[mig.From], m.Tiles[mig.To]
	from, to := src.byMetro[mig.ClientID], dst.byMetro[mig.ClientID]

	m.nextHandoffID++
	commit, err := src.Net.ExportCellHandoff(from.Local, m.nextHandoffID)
	if err != nil {
		// An unadmitted source (e.g. a boundary-flicker double-cross inside
		// one epoch resolved the client elsewhere) cannot export; the
		// client keeps its current cell until its next crossing.
		return
	}
	seq, ipid := from.Flow.Sender.Cursor()
	from.Flow.Sender.Stop()

	entryAP := dst.Net.NearestAPTo(m.Plan.Clients[mig.ClientID].Plan.Trace.Position(mig.At))
	commit.TargetAP = dst.Net.APs[entryAP].Config().IP

	// Wire round-trip (cell-to-cell evidence transfer over the §13 format).
	wire := packet.Encode(commit)
	decoded, err := packet.Decode(wire)
	if err != nil {
		panic(fmt.Sprintf("fleet: metro handoff commit does not round-trip: %v", err))
	}
	commit = decoded.(*packet.DomainHandoffCommit)

	if err := dst.Net.AdmitCellHandoff(to.Local, entryAP, commit); err != nil {
		panic(fmt.Sprintf("fleet: metro admission: %v", err))
	}
	to.Flow.Sender.Resume(seq, ipid)
	to.Flow.Sender.Start()

	src.MigrationsOut++
	dst.MigrationsIn++
	m.stats.Migrations++
	m.stats.SeamOutage += barrier - mig.At
	m.stats.HandoffWireBytes += uint64(len(wire))
	m.met.migrations.Inc()
	m.met.seamOutageMS.Add(uint64((barrier - mig.At) / sim.Millisecond))
	m.met.wireBytes.Add(uint64(len(wire)))
}

// finish collects the per-tile and per-client outcomes into the result.
func (m *metroRun) finish() *MetroResult {
	plan := m.Plan
	dur := plan.Duration()
	res := &MetroResult{
		Cfg:       m.Cfg,
		Tiling:    m.Cfg.Metro.Tiles,
		Seed:      m.Cfg.Seed,
		DurationS: dur.Seconds(),
		EpochMS:   float64(m.Epoch) / float64(sim.Millisecond),
		Epochs:    m.epochs,
		Clients:   len(plan.Clients),
		Crossings: plan.Crossings,
		Stats:     m.stats,
	}

	sent := make([]uint64, len(plan.Clients))
	recv := make([]uint64, len(plan.Clients))
	bytes := make([]uint64, len(plan.Clients))
	for t, tile := range m.Tiles {
		if tile == nil {
			continue
		}
		res.BuiltTiles++
		var tileBytes uint64
		for _, tc := range tile.Clients {
			sent[tc.MetroID] += tc.Flow.Sender.Sent
			recv[tc.MetroID] += tc.Flow.Receiver.Received
			bytes[tc.MetroID] += tc.Flow.Receiver.Bytes
			tileBytes += tc.Flow.Receiver.Bytes
		}
		st := tile.Net.CtlStats()
		res.Stats.Switches += st.SwitchesDone
		res.Stats.CSIReports += st.CSIReports
		res.Tiles = append(res.Tiles, MetroTileResult{
			Tile:          t,
			APs:           len(plan.TileAPs[t]),
			Clients:       len(tile.Clients),
			Resident:      residentCount(plan, t),
			Bytes:         tileBytes,
			Switches:      st.SwitchesDone,
			AirtimePct:    100 * tile.Net.Medium.Utilization(),
			MigrationsIn:  tile.MigrationsIn,
			MigrationsOut: tile.MigrationsOut,
		})
	}
	var total uint64
	for ci := range plan.Clients {
		total += bytes[ci]
		mbps := 0.0
		if dur > 0 {
			mbps = float64(bytes[ci]) * 8 / 1e6 / dur.Seconds()
		}
		res.PerClientMbps = append(res.PerClientMbps, mbps)
		loss := 0.0
		if sent[ci] > 0 && recv[ci] < sent[ci] {
			loss = float64(sent[ci]-recv[ci]) / float64(sent[ci])
		}
		res.PerClientLoss = append(res.PerClientLoss, loss)
		res.Stats.Sent += sent[ci]
		res.Stats.Received += recv[ci]
		res.Stats.Bytes += bytes[ci]
	}
	if dur > 0 {
		res.AggMbps = float64(total) * 8 / 1e6 / dur.Seconds()
	}
	res.Seed = m.Cfg.Seed
	if m.reg != nil {
		snaps := []metrics.Snapshot{m.reg.Snapshot()}
		for _, tile := range m.Tiles {
			if tile != nil && tile.Net.Metrics != nil {
				snaps = append(snaps, tile.Net.Metrics.Snapshot())
			}
		}
		merged := metrics.Merge(snaps...)
		res.Metrics = &merged
	}
	return res
}

// residentCount counts clients whose routes start in tile t.
func residentCount(plan *urban.MetroPlan, t int) int {
	n := 0
	for _, c := range plan.Clients {
		if c.Visits[0].Tile == t {
			n++
		}
	}
	return n
}

// Render produces the metro deployment report — a pure function of the
// result, worker-count-independent by construction.
func (r *MetroResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "WGTT metro deployment report\n")
	city := r.Cfg.Metro.City
	fmt.Fprintf(&b, "tiles %s (%d built of %d)  city %dx%d blocks (%.0f m)  fleet seed %d\n",
		r.Tiling, r.BuiltTiles, r.Tiling.N(), city.Rows, city.Cols, city.BlockM, r.Seed)
	mode := "connected"
	if r.Cfg.MetroIsolated {
		mode = "isolated (seams cut)"
	}
	fmt.Fprintf(&b, "mode %s  epoch %.0f ms (%d epochs over %.1f s)\n",
		mode, r.EpochMS, r.Epochs, r.DurationS)
	fmt.Fprintf(&b, "clients %d  planned seam crossings %d  offered udp %.2f Mb/s each\n",
		r.Clients, r.Crossings, r.Cfg.UDPRateMbps)

	loss := 0.0
	if r.Stats.Sent > 0 {
		loss = float64(r.Stats.Sent-r.Stats.Received) / float64(r.Stats.Sent)
	}
	fmt.Fprintf(&b, "metro capacity %.2f Mb/s delivered  datagrams %d/%d (loss %.4f)\n",
		r.AggMbps, r.Stats.Received, r.Stats.Sent, loss)
	fmt.Fprintf(&b, "migrations %d  seam outage %.0f ms total  handoff wire %d B  switches %d\n\n",
		r.Stats.Migrations, float64(r.Stats.SeamOutage)/float64(sim.Millisecond),
		r.Stats.HandoffWireBytes, r.Stats.Switches)

	b.WriteString("Per-client goodput and loss\n")
	g := &stats.CDF{}
	g.AddAll(r.PerClientMbps)
	l := &stats.CDF{}
	l.AddAll(r.PerClientLoss)
	d := &stats.Table{Header: []string{"metric", "n", "p5", "p25", "p50", "p75", "p95", "max"}}
	row := func(name string, c *stats.CDF) {
		qs := stats.Quantiles(c, 0.05, 0.25, 0.50, 0.75, 0.95, 1)
		cells := []string{name, fmt.Sprintf("%d", c.N())}
		for _, q := range qs {
			cells = append(cells, stats.F(q))
		}
		d.AddRow(cells...)
	}
	row("client goodput (Mb/s)", g)
	row("client loss fraction", l)
	b.WriteString(d.String())

	// The per-tile table is the debugging view; at metro scale (1,000+
	// tiles) it would dwarf the report, so it caps at 64 built tiles —
	// a threshold on the result, not on anything runtime-dependent.
	if r.BuiltTiles <= 64 {
		b.WriteString("\nPer-tile activity\n")
		t := &stats.Table{Header: []string{
			"tile", "aps", "clients", "resident", "MB", "switches", "mig-in", "mig-out", "airtime%"}}
		for i := range r.Tiles {
			c := &r.Tiles[i]
			t.AddRow(fmt.Sprintf("%d", c.Tile), fmt.Sprintf("%d", c.APs),
				fmt.Sprintf("%d", c.Clients), fmt.Sprintf("%d", c.Resident),
				stats.F(float64(c.Bytes)/1e6), fmt.Sprintf("%d", c.Switches),
				fmt.Sprintf("%d", c.MigrationsIn), fmt.Sprintf("%d", c.MigrationsOut),
				stats.F(c.AirtimePct))
		}
		b.WriteString(t.String())
	} else {
		var in uint64
		for i := range r.Tiles {
			in += r.Tiles[i].MigrationsIn
		}
		fmt.Fprintf(&b, "\n(%d built tiles; per-tile table suppressed, %d migrations admitted)\n",
			r.BuiltTiles, in)
	}
	return b.String()
}
