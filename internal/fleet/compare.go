package fleet

import (
	"fmt"
	"strings"

	"wgtt/internal/selector"
	"wgtt/internal/stats"
)

// PolicyOutcome is one selection policy's aggregate outcome over the same
// fleet map: the goodput / accuracy / flip-rate axis DESIGN.md §15's
// ablation reads off one policy at a time, here side by side.
type PolicyOutcome struct {
	Policy selector.Policy
	// FleetMbps is the delivered fleet capacity under this policy.
	FleetMbps float64
	// VehicleP50Mbps is the median per-vehicle goodput.
	VehicleP50Mbps float64
	// AccuracyPct is the mean oracle-match accuracy across cells.
	AccuracyPct float64
	// Switches is the total completed switches; FlipsPerMin is the same as
	// a rate over the summed cell horizons (the "flip rate" — how twitchy
	// the policy is for the same mobility).
	Switches    uint64
	FlipsPerMin float64
	// Result is the full per-policy fleet result, for callers that need
	// more than the axis row.
	Result *Result
}

// PolicyComparison is a per-policy comparison over one fleet config: the
// same cells, seeds, maps, and traffic under each selection policy, so any
// difference in the columns is the policy alone.
type PolicyComparison struct {
	Cfg      Config
	Outcomes []PolicyOutcome
}

// ComparePolicies runs the fleet once per policy — identical (seed, cell)
// derivations each time — and collects the comparison axis. Policies run
// sequentially in the given order (each run parallelizes internally across
// cfg.Workers), so the comparison inherits the byte-identical determinism
// contract.
func ComparePolicies(cfg Config, policies []selector.Policy) (*PolicyComparison, error) {
	if len(policies) == 0 {
		policies = selector.Policies()
	}
	pc := &PolicyComparison{Cfg: cfg.withDefaults()}
	for _, pol := range policies {
		run := cfg
		sc := selector.Config{Policy: pol}
		if cfg.Selector != nil {
			sc = *cfg.Selector
			sc.Policy = pol
		}
		run.Selector = &sc
		res, err := Run(run)
		if err != nil {
			return nil, fmt.Errorf("fleet: policy %s: %w", pol, err)
		}
		pc.Outcomes = append(pc.Outcomes, summarizePolicy(pol, res))
	}
	return pc, nil
}

// summarizePolicy reduces one fleet result to its comparison-axis row.
func summarizePolicy(pol selector.Policy, res *Result) PolicyOutcome {
	out := PolicyOutcome{Policy: pol, Result: res}
	perVehicle := &stats.CDF{}
	acc := &stats.CDF{}
	var horizonS float64
	for i := range res.Cells {
		c := &res.Cells[i]
		out.FleetMbps += c.AggMbps
		out.Switches += c.Switches
		horizonS += c.DurationS
		acc.Add(c.AccuracyPct)
		cdf := &stats.CDF{}
		cdf.AddAll(c.PerVehicleMbps)
		perVehicle.Merge(cdf)
	}
	out.AccuracyPct = acc.Mean()
	if perVehicle.N() > 0 {
		out.VehicleP50Mbps = stats.Quantiles(perVehicle, 0.5)[0]
	}
	if horizonS > 0 {
		out.FlipsPerMin = float64(out.Switches) / horizonS * 60
	}
	return out
}

// Render produces the side-by-side policy table. Pure function of the
// outcomes: byte-identical for any worker count, like Result.Render.
func (pc *PolicyComparison) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Selector policy comparison (%d cells, fleet seed %d, DESIGN.md §15)\n",
		pc.Cfg.Cells, pc.Cfg.Seed)
	t := &stats.Table{Header: []string{
		"policy", "fleet Mb/s", "veh p50 Mb/s", "acc%", "switches", "flips/min"}}
	for _, o := range pc.Outcomes {
		t.AddRow(string(o.Policy), stats.F(o.FleetMbps), stats.F(o.VehicleP50Mbps),
			stats.F(o.AccuracyPct), fmt.Sprintf("%d", o.Switches), stats.F(o.FlipsPerMin))
	}
	b.WriteString(t.String())
	return b.String()
}
