package fleet

import (
	"fmt"
	"os"

	"wgtt/internal/core"
	"wgtt/internal/metrics"
	"wgtt/internal/mobility"
	"wgtt/internal/sim"
	"wgtt/internal/trace"
)

// CellResult is what one corridor cell reports back to the fleet.
type CellResult struct {
	Cell     int
	Seed     uint64
	Vehicles int
	TCPFlows int
	UDPFlows int
	// DurationS is the cell horizon in seconds.
	DurationS float64

	// AggMbps is the cell's delivered capacity: all goodput bytes over the
	// cell horizon (the per-cell capacity budget of the Zhang et al.
	// kernel-AP measurements, aggregated fleet-wide in the report).
	AggMbps float64
	// PerVehicleMbps is each vehicle's goodput over its own transit window.
	PerVehicleMbps []float64
	// UDPLoss is the loss fraction of each UDP vehicle's flow.
	UDPLoss []float64
	// AccuracyPct is the fraction of oracle samples where the serving AP
	// was the ESNR-optimal one (Table 2's metric, per cell).
	AccuracyPct float64

	Switches        uint64
	StopRetransmits uint64
	CSIReports      uint64
	UplinkUnique    uint64
	UplinkDuplicate uint64
	// AirtimePct is the primary medium's utilization.
	AirtimePct float64

	// TraceFile and TraceEvents are set when per-cell tracing is enabled.
	TraceFile   string
	TraceEvents int

	// Metrics is the cell's observability snapshot, set when cfg.Metrics is
	// enabled. It is kept out of Report rendering so the determinism
	// contract's byte-identical output is unaffected.
	Metrics *metrics.Snapshot

	// Federation outcomes, populated only when cfg.Domains > 1
	// (DESIGN.md §13): inter-controller handoff activity as vehicles cross
	// domain boundaries inside the cell.
	HandoffOffers  uint64
	DomainHandoffs uint64
	HandoffAborts  uint64
	CrossSwitches  uint64

	// Fault-injection outcomes, populated only when cfg.Chaos is set
	// (DESIGN.md §11). Chaos is what the injector did; the rest is how the
	// controller's failure recovery responded.
	APCrashes      uint64
	BurstDrops     uint64
	BlackoutDrops  uint64
	APsMarkedDead  uint64
	APsReadmitted  uint64
	ForcedSwitches uint64

	// Urban workload shape, populated only when cfg.Urban is set
	// (DESIGN.md §16): what the city planner generated for this cell.
	Turns            uint64
	LightStops       uint64
	RouteCrossings   uint64
	UrbanBuses       int
	UrbanRiders      int
	UrbanCars        int
	UrbanPedestrians int
}

// RunCell plans, builds, and runs one corridor cell to completion. It is
// safe to call concurrently for different cells: everything it touches is
// local to the cell.
func RunCell(cfg Config, cell int) (CellResult, error) {
	cfg = cfg.withDefaults()
	plan := PlanCell(cfg, cell)
	if cfg.Urban != nil {
		return runUrbanCell(cfg, cell, plan)
	}

	positions := mobility.DenseArray(cfg.APsPerCell, 5, cfg.SpacingM)
	minX, _ := mobility.ArraySpan(positions)
	s := core.Scenario{
		Mode:        core.ModeWGTT,
		Seed:        plan.Seed,
		Duration:    plan.Duration,
		APPositions: positions,
		Domains:     cfg.Domains,
		Chaos:       cfg.Chaos,
		Selector:    cfg.Selector,
	}
	for _, v := range plan.Vehicles {
		// Arrivals are approaching traffic: each vehicle starts far enough
		// up the road to cross the corridor entry point exactly at its
		// arrival time. (Parking waiting vehicles at the entry point would
		// stack them at one coordinate, where they act as zero-distance
		// disturbers and kill the entering vehicle's link.)
		speedMS := mobility.MPH(v.SpeedMPH)
		drive := &mobility.LinearDrive{
			Start: mobility.Point{
				X: minX - cfg.MarginM - speedMS*v.Arrival.Seconds(),
				Y: mobility.LaneY,
			},
			Vel: mobility.Point{X: speedMS},
		}
		s.Clients = append(s.Clients, core.ClientSpec{Trace: drive, SpeedMPH: v.SpeedMPH})
	}
	n, err := core.Build(s)
	if err != nil {
		return CellResult{}, fmt.Errorf("fleet: cell %d: %w", cell, err)
	}
	if cfg.Metrics {
		n.EnableMetrics()
	}

	res := CellResult{
		Cell:      cell,
		Seed:      plan.Seed,
		Vehicles:  len(plan.Vehicles),
		DurationS: plan.Duration.Seconds(),
	}

	// Attach each vehicle's workload, starting when the vehicle enters.
	type flowTap struct {
		bytes  func() uint64
		window sim.Time
		loss   func() float64 // nil for TCP
	}
	taps := make([]flowTap, len(plan.Vehicles))
	for i, v := range plan.Vehicles {
		window := plan.Duration - v.Arrival
		if v.TCP {
			f := n.AddDownlinkTCP(i, 0, nil)
			res.TCPFlows++
			taps[i] = flowTap{bytes: func() uint64 { return f.Receiver.DeliveredBytes }, window: window}
			n.Eng.At(v.Arrival, f.Sender.Start)
		} else {
			f := n.AddDownlinkUDP(i, cfg.UDPRateMbps, 1400)
			res.UDPFlows++
			taps[i] = flowTap{
				bytes:  func() uint64 { return f.Receiver.Bytes },
				window: window,
				loss:   f.Receiver.LossRate,
			}
			n.Eng.At(v.Arrival, f.Sender.Start)
		}
	}

	// Switching-accuracy oracle: sample every vehicle against the
	// ground-truth best-ESNR AP (Table 2's methodology, fleet-wide).
	match, total := 0, 0
	n.Every(cfg.SamplePeriod, func(at sim.Time) {
		for ci := range n.Clients {
			best, bestE := n.BestESNRAP(ci, at)
			if bestE < 0 {
				continue // out of everyone's range: no meaningful optimum
			}
			total++
			if n.ServingAP(ci) == best {
				match++
			}
		}
	})

	var rec *trace.Recorder
	var traceFile *os.File
	if cfg.TraceDir != "" {
		path := tracePath(cfg, cell)
		traceFile, err = os.Create(path)
		if err != nil {
			return CellResult{}, fmt.Errorf("fleet: cell %d trace: %w", cell, err)
		}
		defer traceFile.Close()
		rec = trace.NewRecorder(traceFile)
		n.AttachRecorder(rec)
		res.TraceFile = path
	}

	n.Run()

	var totalBytes uint64
	for _, tap := range taps {
		b := tap.bytes()
		totalBytes += b
		mbps := 0.0
		if tap.window > 0 {
			mbps = float64(b) * 8 / 1e6 / tap.window.Seconds()
		}
		res.PerVehicleMbps = append(res.PerVehicleMbps, mbps)
		if tap.loss != nil {
			res.UDPLoss = append(res.UDPLoss, tap.loss())
		}
	}
	if plan.Duration > 0 {
		res.AggMbps = float64(totalBytes) * 8 / 1e6 / plan.Duration.Seconds()
	}
	if total > 0 {
		res.AccuracyPct = 100 * float64(match) / float64(total)
	}

	st := n.CtlStats()
	res.Switches = st.SwitchesDone
	res.StopRetransmits = st.StopRetransmits
	res.CSIReports = st.CSIReports
	res.UplinkUnique = st.UplinkUnique
	res.UplinkDuplicate = st.UplinkDuplicate
	res.AirtimePct = 100 * n.Medium.Utilization()
	if cfg.Domains > 1 {
		fs := n.FedStats()
		res.HandoffOffers = fs.OffersSent
		res.DomainHandoffs = fs.Adoptions
		res.HandoffAborts = fs.Aborts
		res.CrossSwitches = fs.CrossSwitches
	}
	if n.Chaos != nil {
		cs := n.Chaos.Stats
		res.APCrashes = cs.APCrashes
		res.BurstDrops = cs.BurstDrops
		res.BlackoutDrops = cs.BlackoutDrops
		res.APsMarkedDead = st.APsMarkedDead
		res.APsReadmitted = st.APsReadmitted
		res.ForcedSwitches = st.ForcedSwitches
	}

	if rec != nil {
		if err := rec.Flush(); err != nil {
			return CellResult{}, fmt.Errorf("fleet: cell %d trace: %w", cell, err)
		}
		res.TraceEvents = rec.N
	}
	if n.Metrics != nil {
		snap := n.Metrics.Snapshot()
		res.Metrics = &snap
	}
	return res, nil
}
