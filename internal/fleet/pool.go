package fleet

import "sync"

// progressFunc wraps cfg.Progress into a completion callback: each call
// marks one of total units done and reports (done, total). Calls are
// serialized under a mutex so worker goroutines can fire it directly; a nil
// hook costs one no-op call.
func progressFunc(cfg Config, total int) func() {
	if cfg.Progress == nil {
		return func() {}
	}
	var mu sync.Mutex
	done := 0
	return func() {
		mu.Lock()
		defer mu.Unlock()
		done++
		cfg.Progress(done, total)
	}
}

// ForEach runs fn(i) for every i in [0, n) across a bounded pool of
// workers goroutines. With workers <= 1 it degenerates to a plain
// sequential loop on the calling goroutine, so single-worker runs have no
// scheduling at all. fn must write any output it produces into a slot that
// is private to its index (e.g. results[i]): that is what makes the
// combined output independent of worker count and interleaving.
//
// ForEach returns once every fn call has returned.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
