package fleet

import (
	"fmt"
	"os"

	"wgtt/internal/core"
	"wgtt/internal/sim"
	"wgtt/internal/trace"
)

// runUrbanCell runs one street-grid city cell (DESIGN.md §16). The cell's
// whole city — graph, AP deployment, bus lines, cars, pedestrians — derives
// from the (fleet seed, cell index) scenario seed, so urban fleets keep the
// byte-identical-report determinism contract. Every client carries a CBR
// downlink UDP flow for the full horizon (riders and pedestrians are
// receivers too; there is no TCP mix on the city workload).
func runUrbanCell(cfg Config, cell int, plan CellPlan) (CellResult, error) {
	s := core.UrbanScenario(core.ModeWGTT, *cfg.Urban, plan.Seed)
	s.Chaos = cfg.Chaos
	s.Selector = cfg.Selector
	n, err := core.Build(s)
	if err != nil {
		return CellResult{}, fmt.Errorf("fleet: urban cell %d: %w", cell, err)
	}
	if cfg.Metrics {
		n.EnableMetrics()
	}
	dur := n.Scenario.Duration

	res := CellResult{
		Cell:      cell,
		Seed:      plan.Seed,
		Vehicles:  len(n.Clients),
		DurationS: dur.Seconds(),
	}

	type flowTap struct {
		bytes func() uint64
		loss  func() float64
	}
	taps := make([]flowTap, len(n.Clients))
	for i := range n.Clients {
		f := n.AddDownlinkUDP(i, cfg.UDPRateMbps, 1400)
		res.UDPFlows++
		taps[i] = flowTap{
			bytes: func() uint64 { return f.Receiver.Bytes },
			loss:  f.Receiver.LossRate,
		}
		f.Sender.Start()
	}

	// Same switching-accuracy oracle as the corridor cells (Table 2's
	// methodology on city streets).
	match, total := 0, 0
	n.Every(cfg.SamplePeriod, func(at sim.Time) {
		for ci := range n.Clients {
			best, bestE := n.BestESNRAP(ci, at)
			if bestE < 0 {
				continue
			}
			total++
			if n.ServingAP(ci) == best {
				match++
			}
		}
	})

	var rec *trace.Recorder
	if cfg.TraceDir != "" {
		path := tracePath(cfg, cell)
		traceFile, err := os.Create(path)
		if err != nil {
			return CellResult{}, fmt.Errorf("fleet: urban cell %d trace: %w", cell, err)
		}
		defer traceFile.Close()
		rec = trace.NewRecorder(traceFile)
		n.AttachRecorder(rec)
		res.TraceFile = path
	}

	n.Run()

	var totalBytes uint64
	for _, tap := range taps {
		b := tap.bytes()
		totalBytes += b
		mbps := 0.0
		if dur > 0 {
			mbps = float64(b) * 8 / 1e6 / dur.Seconds()
		}
		res.PerVehicleMbps = append(res.PerVehicleMbps, mbps)
		res.UDPLoss = append(res.UDPLoss, tap.loss())
	}
	if dur > 0 {
		res.AggMbps = float64(totalBytes) * 8 / 1e6 / dur.Seconds()
	}
	if total > 0 {
		res.AccuracyPct = 100 * float64(match) / float64(total)
	}

	st := n.CtlStats()
	res.Switches = st.SwitchesDone
	res.StopRetransmits = st.StopRetransmits
	res.CSIReports = st.CSIReports
	res.UplinkUnique = st.UplinkUnique
	res.UplinkDuplicate = st.UplinkDuplicate
	res.AirtimePct = 100 * n.Medium.Utilization()
	if n.Fed != nil {
		fs := n.FedStats()
		res.HandoffOffers = fs.OffersSent
		res.DomainHandoffs = fs.Adoptions
		res.HandoffAborts = fs.Aborts
		res.CrossSwitches = fs.CrossSwitches
	}
	if n.Chaos != nil {
		cs := n.Chaos.Stats
		res.APCrashes = cs.APCrashes
		res.BurstDrops = cs.BurstDrops
		res.BlackoutDrops = cs.BlackoutDrops
		res.APsMarkedDead = st.APsMarkedDead
		res.APsReadmitted = st.APsReadmitted
		res.ForcedSwitches = st.ForcedSwitches
	}

	ust := n.Urban.Stats
	res.Turns = uint64(ust.Turns)
	res.LightStops = uint64(ust.LightStops)
	res.RouteCrossings = uint64(ust.RouteCrossings)
	res.UrbanBuses = ust.Buses
	res.UrbanRiders = ust.Riders
	res.UrbanCars = ust.Cars
	res.UrbanPedestrians = ust.Pedestrians

	if rec != nil {
		if err := rec.Flush(); err != nil {
			return CellResult{}, fmt.Errorf("fleet: urban cell %d trace: %w", cell, err)
		}
		res.TraceEvents = rec.N
	}
	if n.Metrics != nil {
		snap := n.Metrics.Snapshot()
		res.Metrics = &snap
	}
	return res, nil
}
