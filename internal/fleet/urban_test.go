package fleet

import (
	"strings"
	"testing"

	"wgtt/internal/selector"
	"wgtt/internal/urban"
)

// urbanTestConfig keeps the quadratic medium cost small: two tiny cities,
// a handful of clients each, short horizons.
func urbanTestConfig(workers int) Config {
	city := urban.DefaultConfig()
	city.Rows, city.Cols = 2, 2
	city.APSpacingM = 30
	city.RidersPerBus = 2
	city.Cars = 0
	city.Pedestrians = 1
	city.MaxDurationS = 10
	return Config{
		Cells:       2,
		Seed:        7,
		Workers:     workers,
		UDPRateMbps: 2,
		Urban:       &city,
	}
}

// TestUrbanFleetDeterministicAcrossWorkers is the satellite determinism
// gate: same (seed, graph) must yield byte-identical routes, rider
// offsets, and reports for 1, 4, and 8 workers.
func TestUrbanFleetDeterministicAcrossWorkers(t *testing.T) {
	ref, err := Run(urbanTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Render()
	for _, workers := range []int{4, 8} {
		got, err := Run(urbanTestConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		if r := got.Render(); r != want {
			t.Fatalf("urban reports differ: workers=1 vs workers=%d:\n%s\n---\n%s", workers, want, r)
		}
	}
	// The city section must be present and the cells exercised.
	if !strings.Contains(want, "Urban workload") {
		t.Fatalf("urban section missing from report:\n%s", want)
	}
	if !strings.Contains(want, "Federation") {
		t.Fatalf("urban city with 2 domains must federate:\n%s", want)
	}
	for _, c := range ref.Cells {
		if c.AggMbps <= 0 {
			t.Errorf("urban cell %d delivered nothing", c.Cell)
		}
		if c.UrbanBuses != 1 || c.UrbanRiders != 2 {
			t.Errorf("urban cell %d mix: buses %d riders %d", c.Cell, c.UrbanBuses, c.UrbanRiders)
		}
		if c.RouteCrossings == 0 {
			t.Errorf("urban cell %d never crossed a domain boundary", c.Cell)
		}
	}
}

// TestCorridorReportHasNoUrbanSection pins the pre-urban report shape.
func TestCorridorReportHasNoUrbanSection(t *testing.T) {
	res, err := Run(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Render(), "Urban workload") {
		t.Fatal("corridor report grew an urban section")
	}
}

func TestComparePolicies(t *testing.T) {
	cfg := urbanTestConfig(2)
	cfg.Cells = 1
	policies := []selector.Policy{selector.WindowedMedianPolicy, selector.PredictivePolicy}
	pc, err := ComparePolicies(cfg, policies)
	if err != nil {
		t.Fatal(err)
	}
	if len(pc.Outcomes) != 2 {
		t.Fatalf("outcomes = %d, want 2", len(pc.Outcomes))
	}
	for i, o := range pc.Outcomes {
		if o.Policy != policies[i] {
			t.Fatalf("outcome %d policy = %s, want %s", i, o.Policy, policies[i])
		}
		if o.FleetMbps <= 0 {
			t.Fatalf("policy %s delivered nothing", o.Policy)
		}
		if o.Result == nil || len(o.Result.Cells) != 1 {
			t.Fatalf("policy %s lost its full result", o.Policy)
		}
	}
	out := pc.Render()
	for _, p := range policies {
		if !strings.Contains(out, string(p)) {
			t.Fatalf("comparison table missing %s:\n%s", p, out)
		}
	}
	// Rendering is pure: same outcomes, same bytes.
	if out != pc.Render() {
		t.Fatal("comparison render not pure")
	}
}
