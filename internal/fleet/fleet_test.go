package fleet

import (
	"os"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"wgtt/internal/chaos"
	"wgtt/internal/sim"
	"wgtt/internal/trace"
)

// testConfig is a deliberately tiny fleet so the determinism test stays
// fast even under -race: short corridors, fast vehicles, few cells.
func testConfig(workers int) Config {
	return Config{
		Cells:          3,
		Seed:           7,
		Workers:        workers,
		APsPerCell:     4,
		ArrivalsPerMin: 12,
		ArrivalWindow:  4 * sim.Second,
		MaxVehicles:    2,
		SpeedsMPH:      []float64{35},
		UDPRateMbps:    15,
	}
}

func TestForEachCoversAllOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 100} {
		const n = 50
		var hits [n]int32
		ForEach(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
	ForEach(0, 4, func(int) { t.Fatal("fn called for n=0") })
}

func TestPlanCellDeterministicAndIsolated(t *testing.T) {
	cfg := testConfig(1)
	a := PlanCell(cfg, 0)
	b := PlanCell(cfg, 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same (seed, cell) produced different plans:\n%+v\n%+v", a, b)
	}
	other := PlanCell(cfg, 1)
	if other.Seed == a.Seed {
		t.Error("adjacent cells share a scenario seed")
	}
	if len(a.Vehicles) == 0 || a.Vehicles[0].Arrival != 0 {
		t.Fatalf("first vehicle must arrive at t=0: %+v", a.Vehicles)
	}
	if len(a.Vehicles) > cfg.MaxVehicles {
		t.Errorf("vehicle cap violated: %d", len(a.Vehicles))
	}
	// The plan must not depend on the worker knob.
	cfg8 := cfg
	cfg8.Workers = 8
	if c := PlanCell(cfg8, 0); !reflect.DeepEqual(a, c) {
		t.Error("worker count leaked into the cell plan")
	}
}

func TestPlanCellSeedChangesEverything(t *testing.T) {
	cfg := testConfig(1)
	a := PlanCell(cfg, 0)
	cfg.Seed = 8
	b := PlanCell(cfg, 0)
	if a.Seed == b.Seed {
		t.Error("fleet seed does not reach cell seeds")
	}
}

// TestFleetDeterministicAcrossWorkers is the acceptance check: a fleet run
// with 1 worker and with 4 workers must render byte-identical reports.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	serial, err := Run(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	a, b := serial.Render(), parallel.Render()
	if a != b {
		t.Fatalf("reports differ across worker counts:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", a, b)
	}
	// And the run must have actually exercised the system.
	var vehicles int
	var switches uint64
	for _, c := range serial.Cells {
		vehicles += c.Vehicles
		switches += c.Switches
		if c.AggMbps <= 0 {
			t.Errorf("cell %d delivered nothing", c.Cell)
		}
	}
	if vehicles < 3 {
		t.Errorf("only %d vehicles fleet-wide", vehicles)
	}
	if switches == 0 {
		t.Error("no switches anywhere in the fleet")
	}
}

// TestFleetChaosDeterministicAcrossWorkers is the DESIGN.md §11 fleet
// acceptance check: with fault injection enabled, reports must stay
// byte-identical across worker counts, and the resilience section must
// appear (and only appear) when chaos is configured.
func TestFleetChaosDeterministicAcrossWorkers(t *testing.T) {
	chaosCfg := func() *chaos.Config {
		c := chaos.DefaultConfig()
		// Compress MTBFs so the short test cells see real faults.
		c.APCrashMTBF = 10 * sim.Second
		c.APDowntime = sim.Second
		c.BackhaulBurstMTBF = 8 * sim.Second
		c.CSIBlackoutMTBF = 8 * sim.Second
		c.LatencySpikeMTBF = 8 * sim.Second
		return &c
	}
	withChaos := func(workers int) Config {
		cfg := testConfig(workers)
		cfg.Chaos = chaosCfg()
		return cfg
	}

	base, err := Run(withChaos(1))
	if err != nil {
		t.Fatal(err)
	}
	want := base.Render()
	if !strings.Contains(want, "Resilience (fault injection") {
		t.Fatal("chaos-enabled report lacks the resilience section")
	}
	var crashes, forced uint64
	for _, c := range base.Cells {
		crashes += c.APCrashes
		forced += c.ForcedSwitches
	}
	if crashes == 0 {
		t.Error("compressed-MTBF fleet applied no AP crashes; the test exercised nothing")
	}
	if forced == 0 {
		t.Error("no forced failover switches anywhere in the chaos fleet")
	}

	for _, workers := range []int{4, 8} {
		res, err := Run(withChaos(workers))
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Render(); got != want {
			t.Fatalf("chaos reports differ across worker counts:\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s", want, workers, got)
		}
	}

	// Chaos-free reports must not grow the section.
	plain, err := Run(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.Render(), "Resilience") {
		t.Error("resilience section rendered without chaos configured")
	}
}

// TestFleetFederationDeterministicAcrossWorkers is the DESIGN.md §13 fleet
// acceptance check: with each cell's controller tier sharded into two
// domains, vehicles complete cross-domain handoffs, and reports stay
// byte-identical across worker counts.
func TestFleetFederationDeterministicAcrossWorkers(t *testing.T) {
	withDomains := func(workers int) Config {
		cfg := testConfig(workers)
		cfg.Domains = 2
		return cfg
	}

	base, err := Run(withDomains(1))
	if err != nil {
		t.Fatal(err)
	}
	want := base.Render()
	if !strings.Contains(want, "Federation (2 domains") {
		t.Fatal("federated report lacks the federation section")
	}
	var offers, cross uint64
	for _, c := range base.Cells {
		offers += c.HandoffOffers
		cross += c.CrossSwitches
	}
	if offers == 0 {
		t.Error("no inter-controller handoff offers anywhere in the federated fleet")
	}
	if cross == 0 {
		t.Error("no cross-domain switches completed anywhere in the federated fleet")
	}

	for _, workers := range []int{4, 8} {
		res, err := Run(withDomains(workers))
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Render(); got != want {
			t.Fatalf("federated reports differ across worker counts:\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s", want, workers, got)
		}
	}

	// Single-controller reports must not grow the section.
	plain, err := Run(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.Render(), "Federation (") {
		t.Error("federation section rendered without domains configured")
	}
}

func TestCellTraceRoundTrip(t *testing.T) {
	cfg := testConfig(1)
	cfg.Cells = 1
	cfg.TraceDir = t.TempDir()
	res, err := RunCell(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceEvents == 0 || res.TraceFile == "" {
		t.Fatalf("no trace emitted: %+v", res)
	}
	f, err := os.Open(res.TraceFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := trace.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != res.TraceEvents {
		t.Fatalf("file has %d events, recorder counted %d", len(evs), res.TraceEvents)
	}
	kinds := map[trace.Kind]int{}
	for _, ev := range evs {
		kinds[ev.Kind]++
	}
	for _, want := range []trace.Kind{trace.KindDeliver, trace.KindFrameTx, trace.KindSwitch} {
		if kinds[want] == 0 {
			t.Errorf("trace has no %q events", want)
		}
	}
}

func TestRunPropagatesCellError(t *testing.T) {
	cfg := testConfig(1)
	cfg.Cells = 1
	cfg.TraceDir = "/nonexistent/fleet-trace-dir"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unwritable trace dir did not fail the run")
	}
}
