package fleet

import (
	"strings"
	"testing"

	"wgtt/internal/urban"
)

// metroTestConfig keeps the quadratic medium cost small: a 3x3-block city
// cut into 2x2 tiles, six clients, a short horizon — but with real seam
// crossings, which is the whole point.
func metroTestConfig(workers int) Config {
	city := urban.DefaultConfig()
	city.Rows, city.Cols = 3, 3
	city.APSpacingM = 30
	city.RidersPerBus = 3
	city.Cars = 1
	city.Pedestrians = 1
	city.MaxDurationS = 15
	city.Domains = 1 // metro cities are tiled, not slab-federated
	return Config{
		Seed:        7,
		Workers:     workers,
		UDPRateMbps: 4,
		Metro: &urban.MetroConfig{
			Tiles: urban.Tiling{Rows: 2, Cols: 2},
			City:  city,
		},
	}
}

// TestMetroDeterministicAcrossWorkers is the tentpole determinism gate:
// one connected city, clients migrating across tile seams, and the report
// must come out byte-identical for 1, 4, and 8 workers.
func TestMetroDeterministicAcrossWorkers(t *testing.T) {
	ref, err := RunMetro(metroTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Render()
	for _, workers := range []int{4, 8} {
		got, err := RunMetro(metroTestConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		if r := got.Render(); r != want {
			t.Fatalf("metro reports differ: workers=1 vs workers=%d:\n%s\n---\n%s", workers, want, r)
		}
	}
	if ref.Stats.Migrations == 0 {
		t.Fatalf("connected metro performed no migrations:\n%s", want)
	}
	if ref.Stats.Migrations > uint64(ref.Crossings) {
		t.Fatalf("migrations %d exceed planned crossings %d", ref.Stats.Migrations, ref.Crossings)
	}
	if ref.Stats.HandoffWireBytes == 0 {
		t.Fatal("migrations happened but no handoff bytes crossed the wire")
	}
	if ref.Stats.SeamOutage <= 0 {
		t.Fatal("migrations happened with zero seam outage (barrier quantization must cost time)")
	}
	if ref.AggMbps <= 0 {
		t.Fatal("metro delivered nothing")
	}
	if ref.Stats.Received > ref.Stats.Sent {
		t.Fatalf("received %d > sent %d", ref.Stats.Received, ref.Stats.Sent)
	}
	if ref.BuiltTiles < 2 {
		t.Fatalf("built tiles %d: a connected metro test needs at least two", ref.BuiltTiles)
	}
	// Migration bookkeeping must balance: every export is someone's import.
	var in, out uint64
	for _, tile := range ref.Tiles {
		in += tile.MigrationsIn
		out += tile.MigrationsOut
	}
	if in != out || in != ref.Stats.Migrations {
		t.Fatalf("migration ledger unbalanced: in %d out %d total %d", in, out, ref.Stats.Migrations)
	}
}

// TestMetroIsolatedCutsSeams pins the ext-metro ablation: the same city
// with seams cut performs no migrations and says so in the report.
func TestMetroIsolatedCutsSeams(t *testing.T) {
	cfg := metroTestConfig(4)
	cfg.MetroIsolated = true
	res, err := RunMetro(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Migrations != 0 {
		t.Fatalf("isolated metro migrated %d clients", res.Stats.Migrations)
	}
	if res.Stats.SeamOutage != 0 || res.Stats.HandoffWireBytes != 0 {
		t.Fatalf("isolated metro has seam costs: outage %v wire %d",
			res.Stats.SeamOutage, res.Stats.HandoffWireBytes)
	}
	if !strings.Contains(res.Render(), "isolated (seams cut)") {
		t.Fatalf("isolated report does not say so:\n%s", res.Render())
	}
	// The planner still counts the crossings the seams would have carried.
	if res.Crossings == 0 {
		t.Fatal("isolated plan shows no crossings — the ablation compares nothing")
	}
}

// TestMetroRunRejectsConfigConflicts pins the mode split and the mutual
// exclusions: metro deployments run via RunMetro only, and a metro cannot
// stack the per-cell urban/chaos/federation layers.
func TestMetroRunRejectsConfigConflicts(t *testing.T) {
	if _, err := Run(metroTestConfig(1)); err == nil {
		t.Fatal("Run accepted a metro config")
	}
	if _, err := RunMetro(Config{Seed: 1}); err == nil {
		t.Fatal("RunMetro accepted a config without Metro")
	}
	bad := metroTestConfig(1)
	bad.Urban = &bad.Metro.City
	if _, err := RunMetro(bad); err == nil {
		t.Fatal("RunMetro accepted Metro+Urban")
	}
	bad = metroTestConfig(1)
	bad.Domains = 2
	if _, err := RunMetro(bad); err == nil {
		t.Fatal("RunMetro accepted Metro+Domains")
	}
}

// TestMetroProgressReportsEpochs checks the progress hook fires once per
// epoch with a monotone (done, total) sequence.
func TestMetroProgressReportsEpochs(t *testing.T) {
	cfg := metroTestConfig(2)
	cfg.Metro.City.MaxDurationS = 5
	var dones []int
	total := -1
	cfg.Progress = func(done, tot int) {
		dones = append(dones, done)
		total = tot
	}
	res, err := RunMetro(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if total != res.Epochs {
		t.Fatalf("progress total %d, want %d epochs", total, res.Epochs)
	}
	if len(dones) != res.Epochs {
		t.Fatalf("progress fired %d times, want %d", len(dones), res.Epochs)
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("progress sequence %v not monotone", dones)
		}
	}
}

// BenchmarkMetroEpoch meters one epoch of metro time: every tile advancing
// one barrier interval plus the barrier's migrations. Build cost is excluded;
// the run is rebuilt whenever the horizon is exhausted.
func BenchmarkMetroEpoch(b *testing.B) {
	cfg := metroTestConfig(4)
	m, err := newMetroRun(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m.Step() {
			b.StopTimer()
			m, err = newMetroRun(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}
