// Downlink fan-out benchmark family (DESIGN.md §14): sustained
// packets-per-second of the §3.1.1 replication path at 8/32/128-AP widths,
// on both substrates. FanoutSim drives the controller's relevance set and
// the simulator Switch's encode-once SendMany; FanoutController isolates
// the controller's own send path over a null fabric (the zero-alloc hot
// path); FanoutUDP pushes real datagrams over loopback through the batched
// sendmmsg writer, with FanoutUDPPerCopy as the per-copy Send loop it
// replaced — the pair is the PR's before/after comparison.
package wgtt_test

import (
	"testing"

	"wgtt/internal/backhaul"
	"wgtt/internal/controller"
	"wgtt/internal/live"
	"wgtt/internal/packet"
	wrt "wgtt/internal/runtime"
	"wgtt/internal/sim"
)

var fanoutWidths = []struct {
	name string
	aps  int
}{
	{"8aps", 8}, {"32aps", 32}, {"128aps", 128},
}

// benchController builds a controller whose one client is heard by every AP,
// so each downlink fans out to the full width. AP 0 reports the strongest
// ESNR and serves the client, so the selection rule never starts a switch
// (its stop/start timers would otherwise keep the engine busy forever).
func benchController(nAPs int, eng *sim.Engine, fab backhaul.Fabric) *controller.Controller {
	infos := make([]controller.APInfo, nAPs)
	for i := range infos {
		infos[i] = controller.APInfo{ID: i, IP: packet.APIP(i), MAC: packet.APMAC(i)}
	}
	cfg := controller.DefaultConfig()
	// Keep every AP's recency fresh for the whole run: the benchmark
	// measures steady-state full-width fan-out, not window expiry.
	cfg.FanoutWindow = sim.Time(1) << 60
	ctl := controller.New(cfg, wrt.Virtual(eng), fab, infos)
	client := packet.ClientMAC(1)
	ctl.RegisterClient(client, packet.ClientIP(1), 0)
	snr := make([]float64, packet.CSISubcarriers)
	for i := 0; i < nAPs; i++ {
		db := 10.0
		if i == 0 {
			db = 20.0
		}
		for j := range snr {
			snr[j] = db
		}
		rep := &packet.CSIReport{Client: client, AP: packet.APIP(i), At: int64(eng.Now())}
		rep.QuantizeSNR(snr)
		ctl.HandleBackhaul(packet.APIP(i), rep)
	}
	eng.Run()
	return ctl
}

// Sim substrate: controller relevance set + the Switch's encode-once
// SendMany with its pooled combined-delivery event.
func BenchmarkFanoutSim(b *testing.B) {
	for _, w := range fanoutWidths {
		b.Run(w.name, func(b *testing.B) {
			eng := sim.NewEngine()
			bh := backhaul.NewSwitch(eng, 200*sim.Microsecond)
			sink := backhaul.NodeFunc(func(packet.IPv4Addr, packet.Message) {})
			for i := 0; i < w.aps; i++ {
				bh.Attach(packet.APIP(i), sink)
			}
			ctl := benchController(w.aps, eng, bh)
			p := &packet.Packet{ClientMAC: packet.ClientMAC(1), Bytes: 1200}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ctl.SendDownlink(p); err != nil {
					b.Fatal(err)
				}
				eng.Run()
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*w.aps)/b.Elapsed().Seconds(), "pkts/s")
		})
	}
}

// nullManyFabric counts fan-out copies and discards them: the fabric-free
// ceiling of the controller's send path.
type nullManyFabric struct{ copies uint64 }

func (f *nullManyFabric) Attach(packet.IPv4Addr, backhaul.Node) {}
func (f *nullManyFabric) Send(_, _ packet.IPv4Addr, _ packet.Message) error {
	f.copies++
	return nil
}
func (f *nullManyFabric) Broadcast(packet.IPv4Addr, packet.Message) {}
func (f *nullManyFabric) SendMany(_ packet.IPv4Addr, tos []packet.IPv4Addr, _ packet.Message) {
	f.copies += uint64(len(tos))
}

// Controller path in isolation: relevance-set sweep plus target emission
// over a null fabric. Steady state is allocation-free (the ZeroAlloc test
// pins it; -benchmem shows it here).
func BenchmarkFanoutController(b *testing.B) {
	for _, w := range fanoutWidths {
		b.Run(w.name, func(b *testing.B) {
			eng := sim.NewEngine()
			fab := &nullManyFabric{}
			ctl := benchController(w.aps, eng, fab)
			p := &packet.Packet{ClientMAC: packet.ClientMAC(1), Bytes: 1200}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ctl.SendDownlink(p); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*w.aps)/b.Elapsed().Seconds(), "pkts/s")
		})
	}
}

// Live substrate, batched: encode once, one batch datagram per endpoint,
// sendmmsg on Linux.
func BenchmarkFanoutUDP(b *testing.B) {
	for _, w := range fanoutWidths {
		b.Run(w.name, func(b *testing.B) {
			r, err := live.MeasureFanout(w.aps, b.N, true)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.PktsPerSec, "pkts/s")
		})
	}
}

// Live substrate, per-copy baseline: the pre-batching path — one encode and
// one WriteToUDP per copy. The FanoutUDP/FanoutUDPPerCopy pkts/s ratio is
// the fan-out speedup this PR claims.
func BenchmarkFanoutUDPPerCopy(b *testing.B) {
	for _, w := range fanoutWidths {
		b.Run(w.name, func(b *testing.B) {
			r, err := live.MeasureFanout(w.aps, b.N, false)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.PktsPerSec, "pkts/s")
		})
	}
}
